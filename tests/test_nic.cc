/**
 * @file
 * NIC behavior: send overheads, injection serialization, software
 * multicast forwarding, and multiport-encoded sends.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "workload/closed_loop.hh"

namespace mdw {
namespace {

NetworkConfig
smallConfig()
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 1; // 4 hosts
    return config;
}

Cycle
drain(Network &net, Cycle limit = 100000)
{
    net.armWatchdog(10000);
    const bool done =
        net.sim().runUntil([&net] { return net.idle(); }, limit);
    EXPECT_TRUE(done) << "network failed to drain";
    return net.sim().now();
}

TEST(Nic, SendOverheadDelaysInjection)
{
    auto latency = [](Cycle overhead) {
        NetworkConfig config = smallConfig();
        config.nic.sendOverhead = overhead;
        config.nic.recvOverhead = 0;
        Network net(config);
        net.nic(0).postUnicast(1, 16, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 10000);
        return net.tracker().unicastLatency().mean();
    };
    const double base = latency(0);
    EXPECT_NEAR(latency(100), base + 100.0, 1e-9);
    EXPECT_NEAR(latency(500), base + 500.0, 1e-9);
}

TEST(Nic, InjectionIsSerialized)
{
    NetworkConfig config = smallConfig();
    config.nic.sendOverhead = 50;
    Network net(config);
    // Two messages queued at once: the second pays the first's
    // serialization plus its own overhead.
    net.nic(0).postUnicast(1, 20, 0);
    net.nic(0).postUnicast(2, 20, 0);
    EXPECT_EQ(net.nic(0).txBacklog(), 2u);
    drain(net);
    EXPECT_EQ(net.nic(0).txBacklog(), 0u);
    EXPECT_EQ(net.nic(0).stats().packetsInjected.value(), 2u);
    const Sampler &lat = net.tracker().unicastLatency();
    EXPECT_EQ(lat.count(), 2u);
    // Second message waits >= 50 (own overhead) + 22 (first packet).
    EXPECT_GE(lat.max(), lat.min() + 70.0);
}

TEST(Nic, HardwareMulticastIsOnePacket)
{
    Network net(smallConfig());
    net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 32, 0);
    drain(net);
    EXPECT_EQ(net.nic(0).stats().packetsInjected.value(), 1u);
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
}

TEST(Nic, SoftwareMulticastSendsBinomialTree)
{
    NetworkConfig config = smallConfig();
    config.nic.scheme = McastScheme::Software;
    Network net(config);
    net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 32, 0);
    drain(net);
    // d=3: source sends ceil(log2(4)) = 2 carriers; one recipient
    // forwards once. Total carriers = 3 (one per destination).
    EXPECT_EQ(net.nic(0).stats().packetsInjected.value(), 2u);
    std::uint64_t total_injected = 0, forwards = 0;
    for (NodeId n = 0; n < 4; ++n) {
        total_injected += net.nic(n).stats().packetsInjected.value();
        forwards += net.nic(n).stats().swForwards.value();
    }
    EXPECT_EQ(total_injected, 3u);
    EXPECT_EQ(forwards, 1u);
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    EXPECT_EQ(net.tracker().mcastLastLatency().count(), 1u);
}

TEST(Nic, SoftwareMulticastPaysPerPhaseOverheads)
{
    auto lastLatency = [](McastScheme scheme) {
        NetworkConfig config = smallConfig();
        config.nic.scheme = scheme;
        config.nic.sendOverhead = 200;
        config.nic.recvOverhead = 200;
        Network net(config);
        net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 32, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 100000);
        return net.tracker().mcastLastLatency().mean();
    };
    const double hw = lastLatency(McastScheme::Hardware);
    const double sw = lastLatency(McastScheme::Software);
    // Hardware pays one send overhead; software pays overheads on
    // every tree edge along the critical path.
    EXPECT_GE(sw, hw + 400.0);
}

TEST(Nic, MultiportEncodingSplitsNonProductSets)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    config.nic.encoding = McastEncoding::Multiport;
    Network net(config);
    // {1, 6} has digits (0,1) and (1,2): not a product set.
    net.nic(0).postMulticast(DestSet::of(16, {1, 6}), 32, 0);
    drain(net);
    EXPECT_EQ(net.nic(0).stats().packetsInjected.value(), 2u);
    EXPECT_EQ(net.tracker().totalDeliveries(), 2u);
    EXPECT_EQ(net.tracker().mcastLastLatency().count(), 1u);
}

TEST(Nic, MultiportHeaderShorterThanBitStringOnBigSystems)
{
    NetworkConfig bitstring = defaultNetwork(); // 64 hosts, n=3
    Network a(bitstring);
    NetworkConfig multiport = defaultNetwork();
    multiport.nic.encoding = McastEncoding::Multiport;
    Network b(multiport);
    EXPECT_EQ(a.mcastHeaderFlits(), 9); // 1 + 64/8
    EXPECT_EQ(b.mcastHeaderFlits(), 4); // 1 + 3 levels
}

TEST(Nic, SwListOverheadGrowsCarrierHeaders)
{
    auto latency = [](bool overhead) {
        NetworkConfig config = smallConfig();
        config.nic.scheme = McastScheme::Software;
        config.nic.swListOverhead = overhead;
        config.nic.sendOverhead = 0;
        config.nic.recvOverhead = 0;
        Network net(config);
        net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 32, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 100000);
        return net.tracker().mcastLastLatency().mean();
    };
    EXPECT_GT(latency(true), latency(false));
}

// A post whose destinations are all written off retires synchronously
// *inside* the post. The workload must still observe onPosted before
// onCompleted, or the completion is dropped against an unregistered
// token and the dependent send below never releases.
class WriteOffChainWorkload : public ClosedLoopWorkload
{
  public:
    explicit WriteOffChainWorkload(std::size_t numHosts)
        : ClosedLoopWorkload(numHosts)
    {
        MessageSpec first; // from the NIC whose tx will be dead
        first.dest = 1;
        first.payloadFlits = 8;
        scheduleSend(0, 0, first, 1);
    }

    bool exhausted() const override { return completions_ == 2; }
    int completions() const { return completions_; }

  protected:
    void
    onTokenCompleted(std::uint64_t token, Cycle now) override
    {
        ++completions_;
        if (token != 1)
            return;
        MessageSpec next; // released by the written-off send
        next.dest = 3;
        next.payloadFlits = 8;
        scheduleSend(2, now + 1, next, 2);
    }

  private:
    int completions_ = 0;
};

TEST(Nic, SynchronousWriteOffStillReleasesDependents)
{
    Network net(smallConfig());
    net.tracker().enableResilience();
    WriteOffChainWorkload w(net.numHosts());
    net.attachWorkload(&w);
    net.nic(0).failTx();
    net.armWatchdog(10000);
    ASSERT_TRUE(net.sim().runUntil(
        [&net, &w] { return w.exhausted() && net.idle(); }, 100000))
        << "dependent send never released after a synchronous "
           "write-off (completions=" << w.completions() << ")";
    EXPECT_EQ(net.tracker().partialCompleted(), 1u);
    EXPECT_EQ(net.tracker().totalCompleted(), 1u);
}

TEST(Nic, TracksDeliveredPayload)
{
    Network net(smallConfig());
    net.tracker().setWindow(0, kNoCycle);
    net.nic(0).postMulticast(DestSet::of(4, {1, 2}), 40, 0);
    drain(net);
    EXPECT_EQ(net.tracker().windowDeliveredFlits(), 80u);
}

TEST(NicSegmentation, LongUnicastSplitsAndReassembles)
{
    NetworkConfig config = smallConfig();
    config.maxPayloadFlits = 100;
    Network net(config);
    net.nic(0).postUnicast(1, 350, 0); // 4 packets: 100+100+100+50
    drain(net);
    EXPECT_EQ(net.nic(0).stats().packetsInjected.value(), 4u);
    EXPECT_EQ(net.nic(1).stats().packetsDelivered.value(), 4u);
    // One logical delivery, full payload accounted.
    EXPECT_EQ(net.tracker().totalDeliveries(), 1u);
    EXPECT_EQ(net.tracker().unicastLatency().count(), 1u);
}

TEST(NicSegmentation, PayloadAccountingSumsSegments)
{
    NetworkConfig config = smallConfig();
    config.maxPayloadFlits = 64;
    Network net(config);
    net.tracker().setWindow(0, kNoCycle);
    net.nic(0).postUnicast(2, 150, 0);
    drain(net);
    EXPECT_EQ(net.tracker().windowDeliveredFlits(), 150u);
}

TEST(NicSegmentation, LongMulticastReachesEveryDestinationOnce)
{
    NetworkConfig config = smallConfig();
    config.maxPayloadFlits = 80;
    Network net(config);
    net.tracker().setWindow(0, kNoCycle);
    net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 200, 0);
    drain(net);
    // 3 packets x 3 destinations, but 3 logical deliveries.
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    EXPECT_EQ(net.tracker().mcastLastLatency().count(), 1u);
    EXPECT_EQ(net.tracker().windowDeliveredFlits(), 600u);
}

TEST(NicSegmentation, LongSoftwareMulticastForwardsWholeMessage)
{
    NetworkConfig config = smallConfig();
    config.maxPayloadFlits = 64;
    config.nic.scheme = McastScheme::Software;
    Network net(config);
    net.tracker().setWindow(0, kNoCycle);
    net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 150, 0);
    drain(net);
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    // Every destination received the full 150-flit message (the
    // intermediate forwarder must resend all segments).
    EXPECT_EQ(net.tracker().windowDeliveredFlits(), 450u);
}

TEST(NicSegmentation, SegmentedLatencyExceedsSinglePacket)
{
    auto latency = [](int maxPayload) {
        NetworkConfig config = smallConfig();
        config.maxPayloadFlits = maxPayload;
        config.nic.sendOverhead = 100;
        Network net(config);
        net.nic(0).postUnicast(1, 200, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 50000);
        return net.tracker().unicastLatency().mean();
    };
    // Four segments pay four send overheads; one packet pays one.
    EXPECT_GT(latency(50), latency(256) + 250.0);
}

TEST(NicDeath, MulticastToSelfPanics)
{
    Network net(smallConfig());
    EXPECT_DEATH(
        net.nic(1).postMulticast(DestSet::of(4, {1, 2}), 8, 0),
        "includes itself");
}

TEST(NicDeath, UnicastToSelfPanics)
{
    Network net(smallConfig());
    EXPECT_DEATH(net.nic(1).postUnicast(1, 8, 0), "itself");
}

} // namespace
} // namespace mdw
