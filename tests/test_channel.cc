/**
 * @file
 * Unit tests for delay-stamped channels and credit channels.
 */

#include <gtest/gtest.h>

#include "sim/channel.hh"

namespace mdw {
namespace {

TEST(Channel, DeliversAfterDelay)
{
    Channel<int> ch("c", 2);
    ch.send(42, 10);
    EXPECT_EQ(ch.peek(10), nullptr);
    EXPECT_EQ(ch.peek(11), nullptr);
    ASSERT_NE(ch.peek(12), nullptr);
    EXPECT_EQ(*ch.peek(12), 42);
    EXPECT_EQ(ch.receive(12), 42);
    EXPECT_EQ(ch.peek(12), nullptr);
}

TEST(Channel, PreservesOrder)
{
    Channel<int> ch("c", 1);
    ch.send(1, 0);
    ch.send(2, 1);
    ch.send(3, 2);
    EXPECT_EQ(ch.receive(5), 1);
    EXPECT_EQ(ch.receive(5), 2);
    EXPECT_EQ(ch.receive(5), 3);
}

TEST(Channel, BusyWithinCycleOnly)
{
    Channel<int> ch("c", 1);
    EXPECT_FALSE(ch.busy(0));
    ch.send(7, 0);
    EXPECT_TRUE(ch.busy(0));
    EXPECT_FALSE(ch.busy(1));
    ch.send(8, 1);
    EXPECT_TRUE(ch.busy(1));
}

TEST(Channel, InFlightCount)
{
    Channel<int> ch("c", 3);
    ch.send(1, 0);
    ch.send(2, 1);
    EXPECT_EQ(ch.inFlight(), 2u);
    (void)ch.receive(3);
    EXPECT_EQ(ch.inFlight(), 1u);
}

TEST(ChannelDeath, TwoSendsSameCyclePanics)
{
    Channel<int> ch("c", 1);
    ch.send(1, 5);
    EXPECT_DEATH(ch.send(2, 5), "two sends");
}

TEST(ChannelDeath, ReceiveWithNothingPanics)
{
    Channel<int> ch("c", 1);
    EXPECT_DEATH(ch.receive(0), "nothing arrived");
    ch.send(1, 0);
    EXPECT_DEATH(ch.receive(0), "nothing arrived");
}

TEST(ChannelDeath, ZeroDelayRejected)
{
    EXPECT_DEATH(Channel<int>("c", 0), "delay must be >= 1");
}

TEST(CreditChannel, MergesSameCycleGrants)
{
    CreditChannel ch("cr", 1);
    ch.send(2, 0);
    ch.send(3, 0);
    EXPECT_EQ(ch.inFlight(), 5);
    EXPECT_EQ(ch.receive(0), 0);
    EXPECT_EQ(ch.receive(1), 5);
    EXPECT_EQ(ch.inFlight(), 0);
}

TEST(CreditChannel, AccumulatesAcrossCycles)
{
    CreditChannel ch("cr", 2);
    ch.send(1, 0);
    ch.send(1, 1);
    ch.send(1, 2);
    EXPECT_EQ(ch.receive(3), 2); // grants from cycles 0 and 1
    EXPECT_EQ(ch.receive(4), 1);
    EXPECT_EQ(ch.receive(5), 0);
}

TEST(CreditChannelDeath, NonPositiveGrantPanics)
{
    CreditChannel ch("cr", 1);
    EXPECT_DEATH(ch.send(0, 0), "non-positive");
}

} // namespace
} // namespace mdw
