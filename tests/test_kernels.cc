/**
 * @file
 * Tests for the closed-loop collective kernels: manual-poll phase
 * sequencing (gather gates the release, rounds gate each other),
 * owner rotation for invalidation storms, multi-tenant membership,
 * and end-to-end runs whose message accounting must balance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/network.hh"
#include "core/presets.hh"
#include "workload/kernels.hh"

namespace mdw {
namespace {

WorkloadParams
kernelParams(CollectiveOp op, int rounds)
{
    WorkloadParams params;
    params.kind = WorkloadKind::Collective;
    params.collective = op;
    params.rounds = rounds;
    return params;
}

// Play the NIC by hand: gather unicasts appear at cycle 0, the
// release multicast only after the *last* gather completion, and no
// earlier than that completion + 1 (the release rule).
TEST(CollectiveKernel, BarrierPhaseSequencing)
{
    CollectiveKernelWorkload w(4, kernelParams(CollectiveOp::Barrier, 1));

    std::vector<MessageSpec> out;
    w.poll(0, 0, out);
    EXPECT_TRUE(out.empty()) << "the root has nothing to gather";
    for (NodeId n = 1; n < 4; ++n) {
        out.clear();
        EXPECT_EQ(w.nextArrival(n, 0), 0u);
        w.poll(n, 0, out);
        ASSERT_EQ(out.size(), 1u) << "node " << n;
        EXPECT_FALSE(out[0].multicast);
        EXPECT_EQ(out[0].dest, 0);
        // Post it as message id = node number.
        w.onPosted(n, out[0].token, static_cast<MsgId>(n), 0);
    }

    w.onCompleted(1, 1, 8);
    w.onCompleted(2, 2, 9);
    out.clear();
    w.poll(0, 9, out);
    EXPECT_TRUE(out.empty()) << "released before the last gather";

    w.onCompleted(3, 3, 10);
    EXPECT_EQ(w.nextArrival(0, 10), 11u) << "release rule: t+1";
    w.poll(0, 10, out);
    EXPECT_TRUE(out.empty());
    w.poll(0, 11, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].multicast);
    EXPECT_EQ(out[0].dests, DestSet::of(4, {1, 2, 3}));

    EXPECT_FALSE(w.exhausted());
    w.onPosted(0, out[0].token, 99, 11);
    w.onCompleted(99, 0, 30);
    EXPECT_TRUE(w.exhausted());
    EXPECT_EQ(w.roundsCompleted(), 1u);
    EXPECT_DOUBLE_EQ(w.roundCycles().mean(), 30.0);
}

TEST(CollectiveKernel, InvalidateRotatesOwner)
{
    WorkloadParams params = kernelParams(CollectiveOp::Invalidate, 2);
    CollectiveKernelWorkload w(4, params);

    std::vector<MessageSpec> out;
    w.poll(0, 0, out);
    ASSERT_EQ(out.size(), 1u) << "round 0 owner is node 0";
    EXPECT_TRUE(out[0].multicast);
    EXPECT_EQ(out[0].dests, DestSet::of(4, {1, 2, 3}));
    w.onPosted(0, out[0].token, 7, 0);
    w.onCompleted(7, 0, 5);

    // Round 1 rotates to node 1 and starts at completion + 1 + think.
    out.clear();
    EXPECT_EQ(w.nextArrival(1, 6), 6u);
    w.poll(1, 6, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dests, DestSet::of(4, {0, 2, 3}));
    w.onPosted(1, out[0].token, 8, 6);
    w.onCompleted(8, 1, 12);
    EXPECT_TRUE(w.exhausted());
    EXPECT_EQ(w.roundsCompleted(), 2u);
}

TEST(CollectiveKernel, MultiTenantMembership)
{
    WorkloadParams params = kernelParams(CollectiveOp::Allreduce, 1);
    params.groups = 6;
    CollectiveKernelWorkload w(16, params);

    ASSERT_EQ(w.numGroups(), 6u);
    for (std::size_t g = 0; g < w.numGroups(); ++g) {
        const std::vector<NodeId> &members = w.groupMembers(g);
        EXPECT_GE(members.size(), 2u) << "group " << g;
        EXPECT_LE(members.size(), 16u) << "group " << g;
        std::set<NodeId> unique(members.begin(), members.end());
        EXPECT_EQ(unique.size(), members.size())
            << "duplicate member in group " << g;
        for (const NodeId m : members) {
            EXPECT_GE(m, 0);
            EXPECT_LT(m, 16);
        }
    }
    // Same seed, same membership: the generator is deterministic.
    CollectiveKernelWorkload w2(16, params);
    for (std::size_t g = 0; g < w.numGroups(); ++g)
        EXPECT_EQ(w.groupMembers(g), w2.groupMembers(g)) << g;
}

void
runToExhaustion(Network &net, CollectiveKernelWorkload &w)
{
    net.attachWorkload(&w);
    net.tracker().setWindow(0, kNoCycle);
    net.armWatchdog(100000);
    ASSERT_TRUE(net.sim().runUntil(
        [&net, &w] { return w.exhausted() && net.idle(); }, 500000));
    // Accounting must balance: every posted message retired.
    const MetricsSnapshot metrics = net.metricsSnapshot();
    EXPECT_EQ(metrics.sumCounters("messages_posted"),
              net.tracker().totalCompleted() +
                  net.tracker().partialCompleted());
    EXPECT_EQ(net.tracker().inFlight(), 0u);
}

TEST(CollectiveKernel, BarrierEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeN = 2; // 16 hosts
    Network net(config);
    CollectiveKernelWorkload w(net.numHosts(),
                               kernelParams(CollectiveOp::Barrier, 3));
    runToExhaustion(net, w);
    EXPECT_EQ(w.roundsCompleted(), 3u);
    // Per round: 15 gather unicasts + 1 release multicast.
    EXPECT_EQ(net.tracker().totalCompleted(), 3u * 16u);
}

TEST(CollectiveKernel, AllreduceEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeN = 2;
    Network net(config);
    WorkloadParams params = kernelParams(CollectiveOp::Allreduce, 2);
    params.think = 25;
    CollectiveKernelWorkload w(net.numHosts(), params);
    runToExhaustion(net, w);
    EXPECT_EQ(w.roundsCompleted(), 2u);
    EXPECT_EQ(net.tracker().totalCompleted(), 2u * 16u);
    EXPECT_GT(w.roundCycles().mean(), 0.0);
}

TEST(CollectiveKernel, InvalidateEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeN = 2;
    Network net(config);
    CollectiveKernelWorkload w(
        net.numHosts(), kernelParams(CollectiveOp::Invalidate, 5));
    runToExhaustion(net, w);
    EXPECT_EQ(w.roundsCompleted(), 5u);
    // One multicast per round.
    EXPECT_EQ(net.tracker().totalCompleted(), 5u);
}

TEST(CollectiveKernel, MultiTenantEndToEnd)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeN = 2;
    Network net(config);
    WorkloadParams params = kernelParams(CollectiveOp::Allreduce, 2);
    params.groups = 4;
    params.think = 10;
    CollectiveKernelWorkload w(net.numHosts(), params);
    runToExhaustion(net, w);
    EXPECT_EQ(w.roundsCompleted(), 4u * 2u);
    EXPECT_EQ(w.roundCycles().count(), 8u);
}

// Two same-node, same-cycle emissions released by *different*
// completions observed in the same cycle must be handed to the NIC in
// an order independent of the hook arrival order -- the oracle and
// the fast path do not guarantee the same intra-cycle completion
// order, so hook order must never leak into message-id assignment.
class ForkJoinWorkload : public ClosedLoopWorkload
{
  public:
    explicit ForkJoinWorkload(std::size_t numHosts)
        : ClosedLoopWorkload(numHosts)
    {
        for (std::uint64_t token : {1u, 2u}) {
            MessageSpec spec;
            spec.dest = static_cast<NodeId>(token);
            spec.payloadFlits = 8;
            scheduleSend(3, 0, spec, token);
        }
    }

  protected:
    void
    onTokenCompleted(std::uint64_t token, Cycle now) override
    {
        if (token >= 100)
            return;
        // Completion of seed k releases follow-up k+100 from node 0.
        MessageSpec spec;
        spec.dest = 2;
        spec.payloadFlits = 8;
        scheduleSend(0, now + 1, spec, token + 100);
    }
};

TEST(ClosedLoop, SameCycleReleasesIgnoreHookArrivalOrder)
{
    std::vector<std::uint64_t> orders[2];
    for (int swap = 0; swap < 2; ++swap) {
        ForkJoinWorkload w(4);
        std::vector<MessageSpec> out;
        w.poll(3, 0, out);
        ASSERT_EQ(out.size(), 2u);
        w.onPosted(3, out[0].token, 11, 0);
        w.onPosted(3, out[1].token, 12, 0);
        // Both seeds complete at cycle 9, observed in either order.
        w.onCompleted(swap ? 12 : 11, 3, 9);
        w.onCompleted(swap ? 11 : 12, 3, 9);
        out.clear();
        w.poll(0, 10, out);
        ASSERT_EQ(out.size(), 2u);
        for (const MessageSpec &spec : out)
            orders[swap].push_back(spec.token);
    }
    EXPECT_EQ(orders[0], orders[1])
        << "emission order depends on completion hook order";
}

TEST(CollectiveKernelDeath, BadParamsPanic)
{
    WorkloadParams params = kernelParams(CollectiveOp::Barrier, 1);
    params.groupSize = 1;
    EXPECT_DEATH(CollectiveKernelWorkload(16, params), "group size");
    params.groupSize = 0;
    params.rounds = 0;
    EXPECT_DEATH(CollectiveKernelWorkload(16, params), "rounds");
    params.rounds = 1;
    params.kind = WorkloadKind::Synthetic;
    EXPECT_DEATH(CollectiveKernelWorkload(16, params), "synthetic");
}

} // namespace
} // namespace mdw
