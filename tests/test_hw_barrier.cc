/**
 * @file
 * Tests for the hardware barrier: the combining unit, the tree
 * planner/manager, end-to-end rounds, and the comparison against the
 * software (NIC-level) barrier.
 */

#include <gtest/gtest.h>

#include "core/collectives.hh"
#include "core/hw_barrier.hh"
#include "core/presets.hh"
#include "switch/barrier_unit.hh"

namespace mdw {
namespace {

TEST(BarrierUnit, CombinesAndEmitsUp)
{
    BarrierUnit unit;
    BarrierSwitchEntry entry;
    entry.expectedPorts = {0, 2, 3};
    entry.upPort = 5;
    unit.configure(7, entry);
    EXPECT_TRUE(unit.participates(7));
    EXPECT_FALSE(unit.participates(8));

    EXPECT_EQ(unit.onArrive(7, 0).group, -1);
    EXPECT_EQ(unit.onArrive(7, 3).group, -1);
    EXPECT_EQ(unit.pendingArrivals(7), 2u);
    const BarrierUnit::Emit emit = unit.onArrive(7, 2);
    EXPECT_EQ(emit.group, 7);
    EXPECT_FALSE(emit.release);
    EXPECT_EQ(emit.upPort, 5);
    // State reset for the next round.
    EXPECT_EQ(unit.pendingArrivals(7), 0u);
    EXPECT_EQ(unit.onArrive(7, 0).group, -1);
}

TEST(BarrierUnit, RootEmitsRelease)
{
    BarrierUnit unit;
    BarrierSwitchEntry entry;
    entry.expectedPorts = {1};
    entry.isRoot = true;
    unit.configure(0, entry);
    const BarrierUnit::Emit emit = unit.onArrive(0, 1);
    EXPECT_EQ(emit.group, 0);
    EXPECT_TRUE(emit.release);
}

TEST(BarrierUnitDeath, UnexpectedPortPanics)
{
    BarrierUnit unit;
    BarrierSwitchEntry entry;
    entry.expectedPorts = {0};
    entry.isRoot = true;
    unit.configure(0, entry);
    EXPECT_DEATH((void)unit.onArrive(0, 4), "unexpected arrival");
    EXPECT_DEATH((void)unit.onArrive(1, 0), "unconfigured");
}

TEST(BarrierUnitDeath, DuplicateArrivalPanics)
{
    BarrierUnit unit;
    BarrierSwitchEntry entry;
    entry.expectedPorts = {0, 1};
    entry.isRoot = true;
    unit.configure(0, entry);
    (void)unit.onArrive(0, 0);
    EXPECT_DEATH((void)unit.onArrive(0, 0), "duplicate arrival");
}

NetworkConfig
barrierNet()
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    return config;
}

TEST(HwBarrier, SingleRoundCompletes)
{
    Network net(barrierNet());
    HwBarrierManager barrier(net);
    DestSet members(net.numHosts());
    for (NodeId m : {0, 3, 7, 12, 15})
        members.set(m);
    const int group = barrier.createGroup(members);

    Cycle done_at = 0;
    barrier.startBarrier(group, [&](Cycle now) { done_at = now; });
    EXPECT_EQ(barrier.pendingBarriers(), 1u);
    net.armWatchdog(20000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(barrier.pendingBarriers(), 0u);
    // Every member received exactly one release copy.
    EXPECT_EQ(net.tracker().totalDeliveries(), members.count());
}

TEST(HwBarrier, TokensAreCombinedNotForwardedPerMember)
{
    Network net(barrierNet());
    HwBarrierManager barrier(net);
    DestSet everyone(net.numHosts());
    for (NodeId m = 0; m < 16; ++m)
        everyone.set(m);
    const int group = barrier.createGroup(everyone);
    barrier.startBarrier(group, nullptr);
    net.armWatchdog(20000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));

    // 16 member tokens + 4 combined tokens (one per leaf switch)
    // absorbed at the root = 20 total across all switches; without
    // combining the root alone would see 16.
    std::uint64_t tokens = 0;
    for (std::size_t s = 0; s < net.numSwitches(); ++s) {
        const auto *cb = dynamic_cast<const CentralBufferSwitch *>(
            &net.switchAt(static_cast<SwitchId>(s)));
        ASSERT_NE(cb, nullptr);
        tokens += cb->barrierTokensCombined();
    }
    EXPECT_EQ(tokens, 20u);
}

TEST(HwBarrier, RepeatedRoundsReuseTheTree)
{
    Network net(barrierNet());
    HwBarrierManager barrier(net);
    DestSet members(net.numHosts());
    for (NodeId m : {1, 5, 9, 13})
        members.set(m);
    const int group = barrier.createGroup(members);

    int completions = 0;
    for (int round = 0; round < 5; ++round) {
        barrier.startBarrier(group, [&](Cycle) { ++completions; });
        net.armWatchdog(20000);
        ASSERT_TRUE(net.sim().runUntil(
            [&net] { return net.idle(); }, 100000));
    }
    EXPECT_EQ(completions, 5);
}

TEST(HwBarrier, TwoGroupsOperateIndependently)
{
    Network net(barrierNet());
    HwBarrierManager barrier(net);
    const int a = barrier.createGroup(DestSet::of(16, {0, 1, 2}));
    const int b = barrier.createGroup(DestSet::of(16, {8, 9, 15}));
    int done_a = 0, done_b = 0;
    barrier.startBarrier(a, [&](Cycle) { ++done_a; });
    barrier.startBarrier(b, [&](Cycle) { ++done_b; });
    net.armWatchdog(20000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_EQ(done_a, 1);
    EXPECT_EQ(done_b, 1);
}

TEST(HwBarrier, WorksOnIrregularTopology)
{
    NetworkConfig config = barrierNet();
    config.topo = TopologyKind::Irregular;
    config.irregular.switches = 12;
    config.irregular.hosts = 24;
    config.seed = 5;
    Network net(config);
    HwBarrierManager barrier(net);
    DestSet members(net.numHosts());
    for (NodeId m : {0, 5, 11, 17, 23})
        members.set(m);
    const int group = barrier.createGroup(members);
    Cycle done_at = 0;
    barrier.startBarrier(group, [&](Cycle now) { done_at = now; });
    net.armWatchdog(20000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 200000));
    EXPECT_GT(done_at, 0u);
}

TEST(HwBarrier, BeatsTheSoftwareBarrier)
{
    // Full-system barrier: hardware combining vs the NIC-level
    // arrive+release barrier (both using hardware multicast for the
    // release) — the companion paper's headline comparison.
    auto hw = [] {
        Network net(barrierNet());
        HwBarrierManager barrier(net);
        DestSet everyone(net.numHosts());
        for (NodeId m = 0; m < 16; ++m)
            everyone.set(m);
        const int group = barrier.createGroup(everyone);
        const Cycle start = net.sim().now();
        Cycle done_at = 0;
        barrier.startBarrier(group,
                             [&](Cycle now) { done_at = now; });
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
        return done_at - start;
    }();
    auto sw = [] {
        Network net(barrierNet());
        CollectiveEngine coll(net);
        DestSet others(net.numHosts());
        for (NodeId m = 1; m < 16; ++m)
            others.set(m);
        const Cycle start = net.sim().now();
        Cycle done_at = 0;
        coll.barrier(0, others, [&](Cycle now) { done_at = now; });
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
        return done_at - start;
    }();
    ASSERT_GT(hw, 0u);
    ASSERT_GT(sw, 0u);
    EXPECT_LT(hw, sw);
}

TEST(HwBarrierDeath, RequiresCentralBuffer)
{
    NetworkConfig config = barrierNet();
    config.arch = SwitchArch::InputBuffer;
    Network net(config);
    EXPECT_DEATH(HwBarrierManager barrier(net), "central-buffer");
}

TEST(HwBarrierDeath, DoubleStartPanics)
{
    Network net(barrierNet());
    HwBarrierManager barrier(net);
    const int group = barrier.createGroup(DestSet::of(16, {0, 1}));
    barrier.startBarrier(group, nullptr);
    EXPECT_DEATH(barrier.startBarrier(group, nullptr),
                 "already has a round");
}

} // namespace
} // namespace mdw
