/**
 * @file
 * Behavioral tests of the two switch architectures, driven through
 * single-switch and two-stage networks with scripted traffic.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"

namespace mdw {
namespace {

NetworkConfig
starConfig(SwitchArch arch)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 1; // 4 hosts, 1 switch
    config.arch = arch;
    config.nic.sendOverhead = 0;
    config.nic.recvOverhead = 0;
    return config;
}

/** Run until idle; returns cycles taken. Fails the test on stall. */
Cycle
drain(Network &net, Cycle limit = 50000)
{
    net.armWatchdog(5000);
    const Cycle start = net.sim().now();
    const bool done =
        net.sim().runUntil([&net] { return net.idle(); }, limit);
    EXPECT_TRUE(done) << "network failed to drain";
    return net.sim().now() - start;
}

class BothArches : public ::testing::TestWithParam<SwitchArch>
{
};

TEST_P(BothArches, SingleUnicastDelivers)
{
    Network net(starConfig(GetParam()));
    net.nic(0).postUnicast(2, 32, 0);
    drain(net);
    EXPECT_EQ(net.tracker().totalDeliveries(), 1u);
    EXPECT_EQ(net.tracker().unicastLatency().count(), 1u);
    // 2 header + 32 payload flits, a couple of link hops.
    const double latency = net.tracker().unicastLatency().mean();
    EXPECT_GE(latency, 34.0);
    EXPECT_LE(latency, 60.0);
}

TEST_P(BothArches, MulticastReachesAllBranches)
{
    Network net(starConfig(GetParam()));
    net.nic(1).postMulticast(DestSet::of(4, {0, 2, 3}), 48, 0);
    drain(net);
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    EXPECT_EQ(net.tracker().mcastLastLatency().count(), 1u);
    const NetworkTotals totals = net.totals();
    // One worm copied to three output ports: two replications.
    EXPECT_EQ(totals.replications, 2u);
    // Only one packet entered the switch.
    EXPECT_EQ(totals.packetsRouted, 1u);
}

TEST_P(BothArches, BlockedBranchDoesNotBlockOthers)
{
    // Node 3 first floods node 1 with a long unicast; node 0 then
    // multicasts to {1, 2}. The branch to 1 must wait behind the
    // unicast, but the branch to 2 must complete long before.
    NetworkConfig config = starConfig(GetParam());
    config.maxPayloadFlits = 512;
    Network net(config);
    net.nic(3).postUnicast(1, 400, 0);
    net.sim().run(50); // blocker owns output 1 before the worm arrives
    net.nic(0).postMulticast(DestSet::of(4, {1, 2}), 32, 50);

    Cycle done2 = 0, done1 = 0;
    auto &tracker = net.tracker();
    net.armWatchdog(5000);
    for (Cycle c = 0; c < 20000 && !net.idle(); ++c) {
        const auto before = tracker.totalDeliveries();
        net.sim().stepOne();
        if (tracker.totalDeliveries() != before) {
            // Something got delivered this cycle.
            if (net.nic(2).stats().packetsDelivered.value() == 1 &&
                done2 == 0) {
                done2 = net.sim().now();
            }
            if (net.nic(1).stats().packetsDelivered.value() == 2 &&
                done1 == 0) {
                done1 = net.sim().now();
            }
        }
    }
    ASSERT_GT(done2, 0u);
    ASSERT_GT(done1, 0u);
    // Asynchronous replication: branch to 2 finishes while branch to
    // 1 is still stuck behind the 400-flit unicast.
    EXPECT_LT(done2 + 200, done1);
}

TEST_P(BothArches, BackToBackPacketsArriveInOrder)
{
    Network net(starConfig(GetParam()));
    for (int i = 0; i < 5; ++i)
        net.nic(0).postUnicast(3, 16, 0);
    drain(net);
    EXPECT_EQ(net.nic(3).stats().packetsDelivered.value(), 5u);
    EXPECT_EQ(net.tracker().totalCompleted(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Arches, BothArches,
                         ::testing::Values(SwitchArch::CentralBuffer,
                                           SwitchArch::InputBuffer));

TEST(CentralBufferSwitch, MulticastStoredOnceNotPerBranch)
{
    NetworkConfig config = starConfig(SwitchArch::CentralBuffer);
    Network net(config);
    auto *cb = dynamic_cast<CentralBufferSwitch *>(&net.switchAt(0));
    ASSERT_NE(cb, nullptr);

    // Broadcast 64 payload flits to 3 nodes: 66 total flits = 9
    // chunks. Per-branch storage would need 27.
    net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 64, 0);
    int peak_chunks = 0;
    std::size_t peak_entries = 0;
    net.armWatchdog(5000);
    while (!net.idle() && net.sim().now() < 20000) {
        net.sim().stepOne();
        peak_chunks = std::max(peak_chunks, cb->cqUsedChunks());
        peak_entries = std::max(peak_entries, cb->cqEntries());
    }
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    EXPECT_EQ(peak_entries, 1u);
    EXPECT_GE(peak_chunks, 9);
    EXPECT_LE(peak_chunks, 9); // whole-packet reservation, exactly once
}

TEST(CentralBufferSwitch, UnicastBypassesWhenOutputIdle)
{
    Network net(starConfig(SwitchArch::CentralBuffer));
    auto *cb = dynamic_cast<CentralBufferSwitch *>(&net.switchAt(0));
    ASSERT_NE(cb, nullptr);
    net.nic(0).postUnicast(1, 32, 0);
    int peak_chunks = 0;
    while (!net.idle() && net.sim().now() < 10000) {
        net.sim().stepOne();
        peak_chunks = std::max(peak_chunks, cb->cqUsedChunks());
    }
    // The bypass path never touches the central queue.
    EXPECT_EQ(peak_chunks, 0);
    EXPECT_EQ(net.tracker().totalDeliveries(), 1u);
}

TEST(CentralBufferSwitch, ContendingUnicastsQueueInCentralBuffer)
{
    Network net(starConfig(SwitchArch::CentralBuffer));
    auto *cb = dynamic_cast<CentralBufferSwitch *>(&net.switchAt(0));
    ASSERT_NE(cb, nullptr);
    // Three senders target the same output; two must be buffered.
    net.nic(0).postUnicast(3, 64, 0);
    net.nic(1).postUnicast(3, 64, 0);
    net.nic(2).postUnicast(3, 64, 0);
    int peak_chunks = 0;
    net.armWatchdog(5000);
    while (!net.idle() && net.sim().now() < 20000) {
        net.sim().stepOne();
        peak_chunks = std::max(peak_chunks, cb->cqUsedChunks());
    }
    EXPECT_GT(peak_chunks, 0);
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
}

TEST(CentralBufferSwitch, MulticastWaitsForChunkReservation)
{
    NetworkConfig config = starConfig(SwitchArch::CentralBuffer);
    // Shrink the queue so two 66-flit multicasts (9 chunks each)
    // cannot both reserve: 12 chunks total.
    config.cb.cqChunks = 20;
    config.maxPayloadFlits = 64;
    Network net(config);
    net.nic(0).postMulticast(DestSet::of(4, {1, 2}), 64, 0);
    net.nic(3).postMulticast(DestSet::of(4, {1, 2}), 64, 0);
    drain(net);
    EXPECT_EQ(net.tracker().totalDeliveries(), 4u);
    // The second worm must have stalled waiting for its reservation.
    EXPECT_GT(net.totals().reservationStallCycles, 0u);
}

TEST(InputBufferSwitch, HeadOfLineBlockingDelaysUnrelatedPacket)
{
    // In the IB switch, a packet stuck at the buffer head blocks the
    // one behind it even though its own output is idle; the CB
    // switch moves the blocked packet into the central queue and the
    // second one proceeds. Compare arrival of the second packet.
    auto run = [](SwitchArch arch) {
        NetworkConfig config = starConfig(arch);
        config.maxPayloadFlits = 512;
        Network net(config);
        // Node 3 occupies output 1 with a 400-flit unicast and gets a
        // head start so it owns the port before the test packets
        // arrive.
        net.nic(3).postUnicast(1, 400, 0);
        net.sim().run(50);
        // Node 0 sends to 1 (will block), then to 2 (output idle).
        net.nic(0).postUnicast(1, 64, 50);
        net.nic(0).postUnicast(2, 64, 50);
        Cycle arrival2 = 0;
        net.armWatchdog(5000);
        while (!net.idle() && net.sim().now() < 30000) {
            net.sim().stepOne();
            if (arrival2 == 0 &&
                net.nic(2).stats().packetsDelivered.value() == 1) {
                arrival2 = net.sim().now();
            }
        }
        EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
        return arrival2;
    };
    const Cycle cb_arrival = run(SwitchArch::CentralBuffer);
    const Cycle ib_arrival = run(SwitchArch::InputBuffer);
    ASSERT_GT(cb_arrival, 0u);
    ASSERT_GT(ib_arrival, 0u);
    // HOL blocking: the IB switch delivers the second packet only
    // after the 400-flit blocker drains; CB delivers it ~300+ cycles
    // earlier.
    EXPECT_GT(ib_arrival, cb_arrival + 250);
}

TEST(InputBufferSwitch, BufferHoldsWholeBlockedPacket)
{
    NetworkConfig config = starConfig(SwitchArch::InputBuffer);
    config.maxPayloadFlits = 512;
    Network net(config);
    auto *ib = dynamic_cast<InputBufferSwitch *>(&net.switchAt(0));
    ASSERT_NE(ib, nullptr);

    net.nic(3).postUnicast(1, 400, 0); // blocker
    net.sim().run(50);                 // let it own output port 1
    net.nic(0).postMulticast(DestSet::of(4, {1, 2}), 64, 50);
    // Input port 0 belongs to host 0; once its branch to node 1
    // blocks, the whole worm must accumulate in the input buffer.
    int peak = 0;
    net.armWatchdog(5000);
    while (!net.idle() && net.sim().now() < 30000) {
        net.sim().stepOne();
        peak = std::max(peak, ib->bufferOccupancy(0));
    }
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    // 64 payload + 2 unicast/3 mcast header flits: the full worm was
    // resident at some point (whole-packet buffering guarantee).
    EXPECT_GE(peak, 64);
}

TEST(SyncReplication, MulticastDeliversCorrectly)
{
    NetworkConfig config = starConfig(SwitchArch::InputBuffer);
    config.sw.replication = ReplicationMode::Synchronous;
    Network net(config);
    net.nic(1).postMulticast(DestSet::of(4, {0, 2, 3}), 48, 0);
    drain(net);
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
    EXPECT_EQ(net.totals().replications, 2u);
}

TEST(SyncReplication, BlockedBranchBlocksAllBranches)
{
    // The inverse of the asynchronous-replication property: under
    // lock-step forwarding, the branch to the idle node 2 cannot run
    // ahead of the branch stuck behind the 400-flit blocker.
    NetworkConfig config = starConfig(SwitchArch::InputBuffer);
    config.sw.replication = ReplicationMode::Synchronous;
    config.maxPayloadFlits = 512;
    Network net(config);
    net.nic(3).postUnicast(1, 400, 0);
    net.sim().run(50);
    net.nic(0).postMulticast(DestSet::of(4, {1, 2}), 32, 50);

    Cycle done2 = 0, done1 = 0;
    net.armWatchdog(5000);
    while (!net.idle() && net.sim().now() < 30000) {
        net.sim().stepOne();
        if (done2 == 0 &&
            net.nic(2).stats().packetsDelivered.value() == 1)
            done2 = net.sim().now();
        if (done1 == 0 &&
            net.nic(1).stats().packetsDelivered.value() == 2)
            done1 = net.sim().now();
    }
    ASSERT_GT(done2, 0u);
    ASSERT_GT(done1, 0u);
    // Both copies land essentially together, AFTER the blocker.
    EXPECT_GT(done2 + 50, done1);
    EXPECT_GT(done2, 400u);
}

TEST(SyncReplication, RandomTrafficDrains)
{
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        NetworkConfig config = defaultNetwork();
        config.fatTreeK = 4;
        config.fatTreeN = 2;
        config.arch = SwitchArch::InputBuffer;
        config.sw.replication = ReplicationMode::Synchronous;
        config.seed = seed;
        Network net(config);

        TrafficParams traffic;
        traffic.pattern = TrafficPattern::MultipleMulticast;
        traffic.load = 0.05;
        traffic.payloadFlits = 32;
        traffic.mcastDegree = 6;
        traffic.seed = seed;
        traffic.stopCycle = 6000;
        SyntheticTraffic source(net.numHosts(), traffic);
        net.attachTraffic(&source);

        net.armWatchdog(30000);
        net.sim().run(6000);
        const bool drained = net.sim().runUntil(
            [&net] { return net.idle(); }, 500000);
        EXPECT_TRUE(drained) << "seed " << seed;
        EXPECT_EQ(net.tracker().totalCompleted(), source.generated());
    }
}

TEST(SyncReplicationDeath, CentralBufferRejectsSyncMode)
{
    NetworkConfig config = starConfig(SwitchArch::CentralBuffer);
    config.sw.replication = ReplicationMode::Synchronous;
    EXPECT_DEATH(Network net(config), "inherently asynchronous");
}

TEST(Switches, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        NetworkConfig config = starConfig(SwitchArch::CentralBuffer);
        config.seed = seed;
        Network net(config);
        net.nic(0).postMulticast(DestSet::of(4, {1, 2, 3}), 40, 0);
        net.nic(2).postUnicast(0, 25, 0);
        net.sim().runUntil([&net] { return net.idle(); }, 20000);
        return net.tracker().mcastLastLatency().mean() +
               net.tracker().unicastLatency().mean();
    };
    EXPECT_DOUBLE_EQ(run(3), run(3));
}

} // namespace
} // namespace mdw
