/**
 * @file
 * Unit tests for SwitchBase helpers: the whole-packet start rule and
 * the up-port selection policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "switch/switch_base.hh"

namespace mdw {
namespace {

SwitchRouting
makeRouting()
{
    SwitchRouting routing(4, 8);
    routing.setDir(0, PortDir::Down);
    routing.setDir(1, PortDir::Down);
    routing.setDir(2, PortDir::Up);
    routing.setDir(3, PortDir::Up);
    routing.setDownReach(0, DestSet::of(8, {0, 1}));
    routing.setDownReach(1, DestSet::of(8, {2, 3}));
    routing.freeze();
    return routing;
}

class ProbeSwitch : public SwitchBase
{
  public:
    ProbeSwitch(const SwitchRouting *routing, const SwitchParams &params)
        : SwitchBase("probe", 0, routing, params)
    {
    }

    void step(Cycle) override {}

    ReceivePolicy
    receivePolicy(PortId) const override
    {
        return ReceivePolicy{16, false};
    }

    using SwitchBase::canStartPacket;
    using SwitchBase::chooseUpPort;
    using SwitchBase::OutPort;
};

PacketDesc
makeDesc(PacketKind kind, PacketId id = 1)
{
    PacketDesc desc;
    desc.id = id;
    desc.src = 0;
    desc.dests = DestSet::of(8, {4, 5});
    desc.kind = kind;
    desc.headerFlits = 2;
    desc.payloadFlits = 30; // 32 total
    return desc;
}

TEST(SwitchBase, UnicastStartsWithOneCredit)
{
    const SwitchRouting routing = makeRouting();
    ProbeSwitch sw(&routing, SwitchParams{});
    ProbeSwitch::OutPort port;
    port.credits = {1};
    port.mcastWholePacket = true;
    EXPECT_TRUE(sw.canStartPacket(port, 0, makeDesc(PacketKind::Unicast)));
    EXPECT_TRUE(sw.canStartPacket(
        port, 0, makeDesc(PacketKind::SwMulticastCarrier)));
    port.credits = {0};
    EXPECT_FALSE(sw.canStartPacket(port, 0, makeDesc(PacketKind::Unicast)));
}

TEST(SwitchBase, MulticastNeedsWholePacketWhenDemanded)
{
    const SwitchRouting routing = makeRouting();
    ProbeSwitch sw(&routing, SwitchParams{});
    ProbeSwitch::OutPort port;
    port.mcastWholePacket = true;
    port.credits = {31};
    EXPECT_FALSE(
        sw.canStartPacket(port, 0, makeDesc(PacketKind::HwMulticast)));
    port.credits = {32};
    EXPECT_TRUE(
        sw.canStartPacket(port, 0, makeDesc(PacketKind::HwMulticast)));
    // Receivers that do their own admission only need one credit.
    port.mcastWholePacket = false;
    port.credits = {1};
    EXPECT_TRUE(
        sw.canStartPacket(port, 0, makeDesc(PacketKind::HwMulticast)));
}

TEST(SwitchBase, DeterministicUpChoiceIsStable)
{
    const SwitchRouting routing = makeRouting();
    SwitchParams params;
    params.upPolicy = UpPortPolicy::Deterministic;
    ProbeSwitch sw(&routing, params);

    const RouteDecision route = routing.decode(
        DestSet::of(8, {6}), RoutingVariant::ReplicateAfterLca);
    ASSERT_TRUE(route.needsUp());

    const PacketDesc desc = makeDesc(PacketKind::Unicast, 7);
    const PortId first = sw.chooseUpPort(route, desc, 0, nullptr);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(sw.chooseUpPort(route, desc, 0, nullptr), first);
    EXPECT_TRUE(first == 2 || first == 3);
}

TEST(SwitchBase, DeterministicUpChoiceSpreadsAcrossPackets)
{
    const SwitchRouting routing = makeRouting();
    SwitchParams params;
    params.upPolicy = UpPortPolicy::Deterministic;
    ProbeSwitch sw(&routing, params);
    const RouteDecision route = routing.decode(
        DestSet::of(8, {6}), RoutingVariant::ReplicateAfterLca);

    std::set<PortId> seen;
    for (PacketId id = 1; id <= 40; ++id)
        seen.insert(sw.chooseUpPort(
            route, makeDesc(PacketKind::Unicast, id), 0, nullptr));
    EXPECT_EQ(seen.size(), 2u); // both up ports get used
}

TEST(SwitchBase, AdaptiveUpChoicePrefersFreePorts)
{
    const SwitchRouting routing = makeRouting();
    SwitchParams params;
    params.upPolicy = UpPortPolicy::Adaptive;
    ProbeSwitch sw(&routing, params);
    const RouteDecision route = routing.decode(
        DestSet::of(8, {6}), RoutingVariant::ReplicateAfterLca);
    const PacketDesc desc = makeDesc(PacketKind::Unicast, 3);

    // Only port 3 is "free".
    EXPECT_EQ(sw.chooseUpPort(route, desc, 0,
                              [](PortId p) { return p == 3; }),
              3);
    EXPECT_EQ(sw.chooseUpPort(route, desc, 0,
                              [](PortId p) { return p == 2; }),
              2);
}

TEST(SwitchBase, AdaptiveFallsBackToHashWhenNothingFree)
{
    const SwitchRouting routing = makeRouting();
    SwitchParams params;
    params.upPolicy = UpPortPolicy::Adaptive;
    ProbeSwitch sw(&routing, params);
    const RouteDecision route = routing.decode(
        DestSet::of(8, {6}), RoutingVariant::ReplicateAfterLca);
    const PacketDesc desc = makeDesc(PacketKind::Unicast, 3);

    const PortId pick =
        sw.chooseUpPort(route, desc, 0, [](PortId) { return false; });
    // Same pick as the deterministic policy would make.
    SwitchParams det;
    det.upPolicy = UpPortPolicy::Deterministic;
    ProbeSwitch dsw(&routing, det);
    EXPECT_EQ(pick, dsw.chooseUpPort(route, desc, 0, nullptr));
}

TEST(SwitchBase, ReplicationModeNames)
{
    EXPECT_STREQ(toString(ReplicationMode::Asynchronous),
                 "asynchronous");
    EXPECT_STREQ(toString(ReplicationMode::Synchronous), "synchronous");
}

} // namespace
} // namespace mdw
