/**
 * @file
 * Tests for the network builder: parameter validation, auto-raising
 * of undersized buffers, wiring invariants, and totals.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"

namespace mdw {
namespace {

TEST(NetworkBuilder, RaisesIbBufferToFitWholePackets)
{
    NetworkConfig config = defaultNetwork();
    config.arch = SwitchArch::InputBuffer;
    config.ib.bufferFlits = 10; // far too small
    config.maxPayloadFlits = 128;
    Network net(config);
    // Largest packet = 128 payload + 9-flit multicast header.
    EXPECT_EQ(net.maxPacketFlits(), 137);
    // The raised buffer is reflected in what upstream senders see:
    // a whole worm can be transferred.
    net.nic(0).postMulticast(DestSet::of(64, {9, 33, 61}), 128, 0);
    net.armWatchdog(10000);
    EXPECT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_EQ(net.tracker().totalDeliveries(), 3u);
}

TEST(NetworkBuilder, RaisesCbInputFifoToFitHeaders)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 4; // 256 hosts -> 33-flit headers
    config.cb.inputFifoFlits = 8;
    Network net(config);
    EXPECT_EQ(net.mcastHeaderFlits(), 33);
    // Broadcast must decode despite the configured 8-flit FIFO.
    DestSet dests(net.numHosts());
    dests.set(200);
    dests.set(17);
    net.nic(0).postMulticast(dests, 16, 0);
    net.armWatchdog(10000);
    EXPECT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_EQ(net.tracker().totalDeliveries(), 2u);
}

TEST(NetworkBuilderDeath, CentralQueueTooSmallIsFatal)
{
    NetworkConfig config = defaultNetwork();
    config.cb.cqChunks = 16; // default packets need 34 chunks
    EXPECT_DEATH(Network net(config), "too small");
}

TEST(NetworkBuilderDeath, MultiportNeedsFatTree)
{
    NetworkConfig config = defaultNetwork();
    config.topo = TopologyKind::Irregular;
    config.nic.encoding = McastEncoding::Multiport;
    EXPECT_DEATH(Network net(config), "multiport encoding requires");
}

TEST(NetworkBuilder, CountsMatchTopology)
{
    NetworkConfig config = defaultNetwork(); // 4-ary 3-tree
    Network net(config);
    EXPECT_EQ(net.numHosts(), 64u);
    EXPECT_EQ(net.numSwitches(), 48u);
    EXPECT_EQ(net.sim().componentCount(), 48u + 64u);
}

TEST(NetworkBuilder, PortTxSnapshotCoversConnectedPorts)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts, 8 switches
    Network net(config);
    // Leaf stage: 4 host ports + 4 up ports; root stage: 4 down
    // ports. 4 leaf switches x 8 + 4 root x 4 = 48 connected ports.
    EXPECT_EQ(net.portTxSnapshot().size(), 48u);
}

TEST(NetworkBuilder, FlitConservationUnderUnicast)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    Network net(config);
    net.nic(0).postUnicast(15, 64, 0); // crosses both stages
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    const NetworkTotals totals = net.totals();
    // No replication: every flit that entered a switch left one.
    EXPECT_EQ(totals.flitsIn, totals.flitsOut);
    EXPECT_EQ(totals.replications, 0u);
}

TEST(NetworkBuilder, ReplicationAddsOutputFlits)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2;
    Network net(config);
    // Broadcast to all 15 others: 14 replications across the tree.
    DestSet everyone(net.numHosts());
    for (NodeId m = 1; m < 16; ++m)
        everyone.set(m);
    net.nic(0).postMulticast(everyone, 32, 0);
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    const NetworkTotals totals = net.totals();
    EXPECT_EQ(totals.replications, 14u);
    EXPECT_GT(totals.flitsOut, totals.flitsIn);
}

TEST(NetworkBuilder, DeterministicAcrossIdenticalBuilds)
{
    auto fingerprint = [] {
        NetworkConfig config = defaultNetwork();
        config.topo = TopologyKind::Irregular;
        config.seed = 77;
        Network net(config);
        TrafficParams traffic;
        traffic.pattern = TrafficPattern::MultipleMulticast;
        traffic.load = 0.02;
        traffic.payloadFlits = 32;
        traffic.mcastDegree = 4;
        traffic.stopCycle = 3000;
        SyntheticTraffic source(net.numHosts(), traffic);
        net.attachTraffic(&source);
        net.sim().run(3000);
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
        return net.tracker().mcastLastLatency().mean() +
               static_cast<double>(net.totals().flitsOut);
    };
    EXPECT_DOUBLE_EQ(fingerprint(), fingerprint());
}

} // namespace
} // namespace mdw
