/**
 * @file
 * Unit tests for round-robin arbitration.
 */

#include <random>

#include <gtest/gtest.h>

#include "switch/arbiter.hh"

namespace mdw {
namespace {

TEST(RoundRobinArbiter, GrantsNothingWithoutRequests)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, false, false}), -1);
    EXPECT_EQ(arb.grantFrom({}), -1);
}

TEST(RoundRobinArbiter, SingleRequester)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2);
}

TEST(RoundRobinArbiter, RotatesUnderFullContention)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(arb.grant(all), 0);
    EXPECT_EQ(arb.grant(all), 1);
    EXPECT_EQ(arb.grant(all), 2);
    EXPECT_EQ(arb.grant(all), 0);
}

TEST(RoundRobinArbiter, IsFairOverTime)
{
    RoundRobinArbiter arb(4);
    int grants[4] = {};
    const std::vector<bool> all{true, true, true, true};
    for (int i = 0; i < 400; ++i)
        ++grants[arb.grant(all)];
    for (int g : grants)
        EXPECT_EQ(g, 100);
}

TEST(RoundRobinArbiter, SkipsIdleRequesters)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({true, false, true, false}), 0);
    EXPECT_EQ(arb.grant({true, false, true, false}), 2);
    EXPECT_EQ(arb.grant({true, false, true, false}), 0);
}

TEST(RoundRobinArbiter, GrantFromMatchesGrant)
{
    RoundRobinArbiter a(4), b(4);
    const std::vector<std::vector<int>> reqs = {
        {0, 2}, {0, 2}, {1, 3}, {0, 1, 2, 3}, {3}};
    for (const auto &req : reqs) {
        std::vector<bool> mask(4, false);
        for (int r : req)
            mask[static_cast<std::size_t>(r)] = true;
        EXPECT_EQ(a.grantFrom(req), b.grant(mask));
    }
}

TEST(RoundRobinArbiter, ResizeResetsPriority)
{
    RoundRobinArbiter arb(2);
    EXPECT_EQ(arb.grant({true, true}), 0);
    arb.resize(3);
    EXPECT_EQ(arb.size(), 3);
    EXPECT_EQ(arb.grant({true, true, true}), 0);
}

TEST(RoundRobinArbiterDeath, SizeMismatchPanics)
{
    RoundRobinArbiter arb(2);
    EXPECT_DEATH((void)arb.grant({true}), "arbiter size");
}

// --- Lane partitioning ---------------------------------------------

TEST(LanePartition, SingleLaneCollapsesBothClasses)
{
    EXPECT_EQ(laneClassBase(1, 0), 0);
    EXPECT_EQ(laneClassBase(1, 1), 0);
    EXPECT_EQ(laneClassSize(1, 0), 1);
    EXPECT_EQ(laneClassSize(1, 1), 1);
}

TEST(LanePartition, ClassesTileEveryLaneWithoutOverlap)
{
    for (int lanes = 2; lanes <= kMaxLanes; ++lanes) {
        const int base1 = laneClassBase(lanes, 1);
        EXPECT_EQ(laneClassBase(lanes, 0), 0) << lanes;
        EXPECT_EQ(laneClassSize(lanes, 0), base1) << lanes;
        EXPECT_EQ(laneClassSize(lanes, 1), lanes - base1) << lanes;
        EXPECT_GE(laneClassSize(lanes, 0), 1) << lanes;
        EXPECT_GE(laneClassSize(lanes, 1), 1) << lanes;
    }
}

TEST(LanePartition, StrayClassesClampToNearest)
{
    // A stray traffic class degrades service instead of crashing.
    EXPECT_EQ(laneClassBase(4, 7), laneClassBase(4, 1));
    EXPECT_EQ(laneClassBase(4, -1), laneClassBase(4, 0));
}

// The per-lane switches flatten (port, lane) into one arbiter of
// size N*L. With one lane per port -- or with traffic confined to a
// single lane -- that arbiter must behave exactly like the size-N
// arbiter of the pre-lane switch: requesters at the occupied lane's
// indices rotate identically, which is what keeps lanes=1 runs
// bit-identical to the single-lane implementation.
TEST(LanePartition, FlattenedArbiterEmbedsSingleLaneArbiter)
{
    const int ports = 4, lanes = 3;
    RoundRobinArbiter flat(ports * lanes), narrow(ports);
    std::mt19937 rng(7);
    for (int round = 0; round < 200; ++round) {
        std::vector<bool> req(static_cast<std::size_t>(ports), false);
        std::vector<bool> wide(
            static_cast<std::size_t>(ports * lanes), false);
        for (int p = 0; p < ports; ++p) {
            const bool want = (rng() & 1) != 0;
            req[static_cast<std::size_t>(p)] = want;
            wide[static_cast<std::size_t>(p * lanes)] = want; // lane 0
        }
        const int got = flat.grant(wide);
        const int ref = narrow.grant(req);
        EXPECT_EQ(got, ref < 0 ? -1 : ref * lanes) << "round " << round;
    }
}

// Starvation check: a lane class that keeps requesting must keep
// being granted even while the other class requests every cycle --
// round-robin arbitration serves flattened (port, lane) requesters
// without bias, so neither partition can lock the other out.
TEST(LanePartition, NeitherClassStarvesUnderContention)
{
    const int lanes = 2; // one port, one lane per class
    RoundRobinArbiter arb(lanes);
    int grants[2] = {};
    for (int i = 0; i < 100; ++i)
        ++grants[arb.grant({true, true})];
    EXPECT_EQ(grants[0], 50);
    EXPECT_EQ(grants[1], 50);
}

} // namespace
} // namespace mdw
