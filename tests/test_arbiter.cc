/**
 * @file
 * Unit tests for round-robin arbitration.
 */

#include <gtest/gtest.h>

#include "switch/arbiter.hh"

namespace mdw {
namespace {

TEST(RoundRobinArbiter, GrantsNothingWithoutRequests)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, false, false}), -1);
    EXPECT_EQ(arb.grantFrom({}), -1);
}

TEST(RoundRobinArbiter, SingleRequester)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2);
}

TEST(RoundRobinArbiter, RotatesUnderFullContention)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(arb.grant(all), 0);
    EXPECT_EQ(arb.grant(all), 1);
    EXPECT_EQ(arb.grant(all), 2);
    EXPECT_EQ(arb.grant(all), 0);
}

TEST(RoundRobinArbiter, IsFairOverTime)
{
    RoundRobinArbiter arb(4);
    int grants[4] = {};
    const std::vector<bool> all{true, true, true, true};
    for (int i = 0; i < 400; ++i)
        ++grants[arb.grant(all)];
    for (int g : grants)
        EXPECT_EQ(g, 100);
}

TEST(RoundRobinArbiter, SkipsIdleRequesters)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({true, false, true, false}), 0);
    EXPECT_EQ(arb.grant({true, false, true, false}), 2);
    EXPECT_EQ(arb.grant({true, false, true, false}), 0);
}

TEST(RoundRobinArbiter, GrantFromMatchesGrant)
{
    RoundRobinArbiter a(4), b(4);
    const std::vector<std::vector<int>> reqs = {
        {0, 2}, {0, 2}, {1, 3}, {0, 1, 2, 3}, {3}};
    for (const auto &req : reqs) {
        std::vector<bool> mask(4, false);
        for (int r : req)
            mask[static_cast<std::size_t>(r)] = true;
        EXPECT_EQ(a.grantFrom(req), b.grant(mask));
    }
}

TEST(RoundRobinArbiter, ResizeResetsPriority)
{
    RoundRobinArbiter arb(2);
    EXPECT_EQ(arb.grant({true, true}), 0);
    arb.resize(3);
    EXPECT_EQ(arb.size(), 3);
    EXPECT_EQ(arb.grant({true, true, true}), 0);
}

TEST(RoundRobinArbiterDeath, SizeMismatchPanics)
{
    RoundRobinArbiter arb(2);
    EXPECT_DEATH((void)arb.grant({true}), "arbiter size");
}

} // namespace
} // namespace mdw
