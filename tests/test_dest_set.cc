/**
 * @file
 * Unit tests for DestSet, parameterized across universe sizes that
 * exercise word boundaries.
 */

#include <gtest/gtest.h>

#include "message/dest_set.hh"

namespace mdw {
namespace {

class DestSetSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DestSetSizes, SetTestClear)
{
    const std::size_t n = GetParam();
    DestSet s(n);
    EXPECT_TRUE(s.empty());
    for (std::size_t i = 0; i < n; i += 3)
        s.set(static_cast<NodeId>(i));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(s.test(static_cast<NodeId>(i)), i % 3 == 0);
    EXPECT_EQ(s.count(), (n + 2) / 3);
    s.clear(0);
    EXPECT_FALSE(s.test(0));
}

TEST_P(DestSetSizes, ForEachAscending)
{
    const std::size_t n = GetParam();
    DestSet s(n);
    std::vector<NodeId> want;
    for (std::size_t i = 1; i < n; i += 7) {
        s.set(static_cast<NodeId>(i));
        want.push_back(static_cast<NodeId>(i));
    }
    EXPECT_EQ(s.toVector(), want);
    EXPECT_EQ(s.first(), want.empty() ? kInvalidNode : want.front());
}

TEST_P(DestSetSizes, SetOperations)
{
    const std::size_t n = GetParam();
    DestSet a(n), b(n);
    a.set(0);
    if (n > 1)
        a.set(static_cast<NodeId>(n - 1));
    b.set(0);

    EXPECT_TRUE(b.subsetOf(a));
    EXPECT_TRUE(a.intersects(b));

    const DestSet inter = a & b;
    EXPECT_EQ(inter.count(), 1u);
    EXPECT_TRUE(inter.test(0));

    const DestSet uni = a | b;
    EXPECT_EQ(uni.count(), a.count());

    const DestSet diff = a - b;
    EXPECT_FALSE(diff.test(0));
    EXPECT_EQ(diff.count(), a.count() - 1);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, DestSetSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 128, 200,
                                           1024));

TEST(DestSet, OfBuildsLiteralSets)
{
    const DestSet s = DestSet::of(16, {1, 5, 9});
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.test(1));
    EXPECT_TRUE(s.test(5));
    EXPECT_TRUE(s.test(9));
}

TEST(DestSet, EqualityIncludesUniverse)
{
    EXPECT_EQ(DestSet::of(16, {3}), DestSet::of(16, {3}));
    EXPECT_FALSE(DestSet::of(16, {3}) == DestSet::of(32, {3}));
    EXPECT_FALSE(DestSet::of(16, {3}) == DestSet::of(16, {4}));
}

TEST(DestSet, ResetClearsAll)
{
    DestSet s = DestSet::of(100, {0, 50, 99});
    s.reset();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.first(), kInvalidNode);
}

TEST(DestSet, SubsetOfEmptyAndFull)
{
    DestSet empty(64);
    DestSet full(64);
    for (int i = 0; i < 64; ++i)
        full.set(i);
    EXPECT_TRUE(empty.subsetOf(full));
    EXPECT_TRUE(empty.subsetOf(empty));
    EXPECT_FALSE(full.subsetOf(empty));
    EXPECT_FALSE(empty.intersects(full));
}

TEST(DestSetDeath, OutOfRangePanics)
{
    DestSet s(8);
    EXPECT_DEATH(s.set(8), "out of universe");
    EXPECT_DEATH(s.set(-1), "out of universe");
    EXPECT_DEATH((void)s.test(100), "out of universe");
}

TEST(DestSetDeath, MismatchedUniversePanics)
{
    DestSet a(8), b(16);
    EXPECT_DEATH(a |= b, "universe mismatch");
    EXPECT_DEATH((void)a.subsetOf(b), "universe mismatch");
}

} // namespace
} // namespace mdw
