/**
 * @file
 * Unit and property tests for the header encodings.
 */

#include <gtest/gtest.h>

#include "message/encoding.hh"
#include "sim/rng.hh"

namespace mdw {
namespace {

TEST(BitString, HeaderFlitsFormula)
{
    EncodingParams enc; // 8-bit flits
    EXPECT_EQ(bitStringHeaderFlits(16, enc), 1 + 2);
    EXPECT_EQ(bitStringHeaderFlits(64, enc), 1 + 8);
    EXPECT_EQ(bitStringHeaderFlits(65, enc), 1 + 9);
    EXPECT_EQ(bitStringHeaderFlits(256, enc), 1 + 32);
    enc.flitBits = 16;
    EXPECT_EQ(bitStringHeaderFlits(64, enc), 1 + 4);
}

TEST(BitString, RoundTrip)
{
    const DestSet dests = DestSet::of(70, {0, 7, 8, 33, 69});
    const auto bytes = encodeBitString(dests);
    EXPECT_EQ(bytes.size(), 9u); // ceil(70/8)
    EXPECT_EQ(decodeBitString(bytes, 70), dests);
}

TEST(BitString, RoundTripRandomSets)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.below(300);
        DestSet dests(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.chance(0.3))
                dests.set(static_cast<NodeId>(i));
        }
        EXPECT_EQ(decodeBitString(encodeBitString(dests), n), dests);
    }
}

TEST(Multiport, HeaderFlitsIndependentOfSystemSize)
{
    EncodingParams enc;
    EXPECT_EQ(multiportHeaderFlits(3, enc), 4);
    EXPECT_EQ(multiportHeaderFlits(5, enc), 6);
}

TEST(Multiport, SingleDestinationIsOnePhase)
{
    const DestSet d = DestSet::of(64, {37});
    const auto groups = planMultiportPhases(4, 3, d);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], d);
}

TEST(Multiport, FullBroadcastIsOnePhase)
{
    DestSet all(64);
    for (int i = 0; i < 64; ++i)
        all.set(i);
    const auto groups = planMultiportPhases(4, 3, all);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], all);
}

TEST(Multiport, ProductSetRecognizedAsOnePhase)
{
    // Destinations {0,1} x {0,2} at the two levels of a 4-ary 2-tree:
    // leaves 0,2,4,6 (digits (0,0),(0,2),(1,0),(1,2)).
    const DestSet d = DestSet::of(16, {0, 2, 4, 6});
    const auto groups = planMultiportPhases(4, 2, d);
    EXPECT_EQ(groups.size(), 1u);
}

TEST(Multiport, NonProductNeedsMultiplePhases)
{
    // {0, 5} has digits (0,0) and (1,1): the product closure would
    // cover 1 and 4 too, which are not destinations.
    const DestSet d = DestSet::of(16, {0, 5});
    const auto groups = planMultiportPhases(4, 2, d);
    EXPECT_EQ(groups.size(), 2u);
}

class MultiportProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MultiportProperty, ExactDisjointCover)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t k = 4;
    const int levels = 3;
    const std::size_t n = 64;

    DestSet dests(n);
    const std::size_t degree = 1 + rng.below(n - 1);
    while (dests.count() < degree)
        dests.set(static_cast<NodeId>(rng.below(n)));

    const auto groups = planMultiportPhases(k, levels, dests);
    ASSERT_FALSE(groups.empty());

    DestSet covered(n);
    for (const DestSet &group : groups) {
        EXPECT_FALSE(group.empty());
        // Disjoint: no destination covered twice.
        EXPECT_FALSE(covered.intersects(group));
        covered |= group;
    }
    // Exact: everything covered, nothing extra.
    EXPECT_EQ(covered, dests);
    // Never worse than one unicast per destination.
    EXPECT_LE(groups.size(), dests.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiportProperty,
                         ::testing::Range(1, 21));

TEST(EncodingNames, ToString)
{
    EXPECT_STREQ(toString(McastEncoding::BitString), "bit-string");
    EXPECT_STREQ(toString(McastEncoding::Multiport), "multiport");
}

} // namespace
} // namespace mdw
