/**
 * @file
 * Unit tests for the delivery tracker and its latency metrics.
 */

#include <gtest/gtest.h>

#include "host/mcast_tracker.hh"

namespace mdw {
namespace {

TEST(Tracker, UnicastLatency)
{
    McastTracker t;
    t.expectMessage(1, 0, 1, 100, false);
    EXPECT_EQ(t.inFlight(), 1u);
    EXPECT_FALSE(t.isComplete(1));
    t.onDelivered(1, 5, 150, 64);
    EXPECT_TRUE(t.isComplete(1));
    EXPECT_EQ(t.inFlight(), 0u);
    EXPECT_EQ(t.unicastLatency().count(), 1u);
    EXPECT_DOUBLE_EQ(t.unicastLatency().mean(), 50.0);
}

TEST(Tracker, MulticastLastAndAverage)
{
    McastTracker t;
    t.expectMessage(7, 0, 3, 1000, true);
    t.onDelivered(7, 1, 1100, 10);
    t.onDelivered(7, 2, 1150, 10);
    EXPECT_FALSE(t.isComplete(7));
    t.onDelivered(7, 3, 1400, 10);
    EXPECT_TRUE(t.isComplete(7));
    EXPECT_DOUBLE_EQ(t.mcastLastLatency().mean(), 400.0);
    EXPECT_DOUBLE_EQ(t.mcastAvgLatency().mean(),
                     (100.0 + 150.0 + 400.0) / 3.0);
    EXPECT_EQ(t.totalDeliveries(), 3u);
    EXPECT_EQ(t.totalCompleted(), 1u);
}

TEST(Tracker, WindowFiltersByCreationTime)
{
    McastTracker t;
    t.setWindow(100, 200);
    t.expectMessage(1, 0, 1, 50, false);  // before window
    t.expectMessage(2, 0, 1, 150, false); // inside
    t.expectMessage(3, 0, 1, 250, false); // after
    EXPECT_EQ(t.measuredInFlight(), 1u);
    t.onDelivered(1, 1, 60, 8);
    t.onDelivered(2, 1, 160, 8);
    t.onDelivered(3, 1, 260, 8);
    EXPECT_EQ(t.unicastLatency().count(), 1u);
    EXPECT_DOUBLE_EQ(t.unicastLatency().mean(), 10.0);
    EXPECT_EQ(t.measuredInFlight(), 0u);
}

TEST(Tracker, WindowThroughputCountsDeliveryTime)
{
    McastTracker t;
    t.setWindow(100, 200);
    t.expectMessage(1, 0, 2, 50, true);
    t.onDelivered(1, 1, 99, 32);  // before window: not counted
    t.onDelivered(1, 2, 100, 32); // inside: counted
    EXPECT_EQ(t.windowDeliveredFlits(), 32u);
}

TEST(Tracker, ResetStatsKeepsLiveMessages)
{
    McastTracker t;
    t.expectMessage(1, 0, 1, 0, false);
    t.onDelivered(1, 1, 10, 8);
    t.expectMessage(2, 0, 1, 0, false);
    t.resetStats();
    EXPECT_EQ(t.unicastLatency().count(), 0u);
    EXPECT_EQ(t.totalDeliveries(), 0u);
    EXPECT_EQ(t.inFlight(), 1u);
    t.onDelivered(2, 1, 20, 8); // still tracked
    EXPECT_EQ(t.inFlight(), 0u);
}

TEST(TrackerResilient, DuplicateDeliveriesAreSwallowed)
{
    McastTracker t;
    t.enableResilience();
    t.expectMessage(1, 0, 2, 0, true);
    t.onDelivered(1, 4, 10, 8);
    t.onDelivered(1, 4, 12, 8); // redundant copy at the same dest
    EXPECT_FALSE(t.isComplete(1));
    EXPECT_EQ(t.duplicateDeliveries(), 1u);
    EXPECT_TRUE(t.isDelivered(1, 4));
    EXPECT_FALSE(t.isDelivered(1, 5));
    t.onDelivered(1, 5, 20, 8);
    EXPECT_TRUE(t.isComplete(1));
    // Post-completion stragglers (a retransmission raced the
    // original) are also swallowed, not a panic.
    t.onDelivered(1, 5, 25, 8);
    EXPECT_EQ(t.duplicateDeliveries(), 2u);
    EXPECT_EQ(t.totalDeliveries(), 2u);
    EXPECT_EQ(t.totalCompleted(), 1u);
}

TEST(TrackerResilient, PartialCompletionUnderUnreachableDests)
{
    McastTracker t;
    t.enableResilience();
    t.expectMessage(3, 0, 3, 100, true);
    t.onDelivered(3, 1, 200, 8);
    EXPECT_TRUE(t.markUnreachable(3, 2, 250));
    EXPECT_FALSE(t.markUnreachable(3, 2, 250)) << "already written off";
    EXPECT_FALSE(t.markUnreachable(3, 1, 250)) << "already delivered";
    EXPECT_FALSE(t.isComplete(3));
    t.onDelivered(3, 4, 300, 8);
    EXPECT_TRUE(t.isComplete(3));
    EXPECT_EQ(t.partialCompleted(), 1u);
    EXPECT_EQ(t.totalCompleted(), 0u);
    EXPECT_EQ(t.unreachableDests(), 1u);
    // Partial completions never feed the latency samplers.
    EXPECT_EQ(t.mcastLastLatency().count(), 0u);
    // markUnreachable after completion reports "no record".
    EXPECT_FALSE(t.markUnreachable(3, 5, 350));
}

TEST(TrackerResilient, FullyUnreachableMessageCompletesPartially)
{
    McastTracker t;
    t.enableResilience();
    t.expectMessage(9, 2, 2, 0, true);
    EXPECT_TRUE(t.markUnreachable(9, 5, 10));
    EXPECT_TRUE(t.markUnreachable(9, 6, 11));
    EXPECT_TRUE(t.isComplete(9));
    EXPECT_EQ(t.inFlight(), 0u);
    EXPECT_EQ(t.partialCompleted(), 1u);
    EXPECT_EQ(t.unreachableDests(), 2u);
}

TEST(TrackerResilient, ResetStatsClearsRecoveryCounters)
{
    McastTracker t;
    t.enableResilience();
    t.expectMessage(1, 0, 2, 0, true);
    t.onDelivered(1, 1, 5, 8);
    t.onDelivered(1, 1, 6, 8);
    t.markUnreachable(1, 2, 7);
    EXPECT_EQ(t.duplicateDeliveries(), 1u);
    t.resetStats();
    EXPECT_EQ(t.duplicateDeliveries(), 0u);
    EXPECT_EQ(t.partialCompleted(), 0u);
    EXPECT_EQ(t.unreachableDests(), 0u);
}

TEST(TrackerDeath, DoubleRegisterPanics)
{
    McastTracker t;
    t.expectMessage(1, 0, 1, 0, false);
    EXPECT_DEATH(t.expectMessage(1, 0, 1, 0, false), "twice");
}

TEST(TrackerDeath, UnknownDeliveryPanics)
{
    McastTracker t;
    EXPECT_DEATH(t.onDelivered(9, 1, 10, 8), "unknown message");
}

TEST(TrackerDeath, OverDeliveryPanics)
{
    McastTracker t;
    t.expectMessage(1, 0, 1, 0, false);
    t.onDelivered(1, 1, 10, 8);
    // Message completed and was erased; another delivery is unknown.
    EXPECT_DEATH(t.onDelivered(1, 2, 11, 8), "unknown message");
}

} // namespace
} // namespace mdw
