/**
 * @file
 * Tests for the collective-operations engine (broadcast, barrier,
 * reduce, allreduce) over both multicast schemes.
 */

#include <gtest/gtest.h>

#include "core/collectives.hh"
#include "core/presets.hh"

namespace mdw {
namespace {

NetworkConfig
smallNet(McastScheme scheme = McastScheme::Hardware)
{
    NetworkConfig config = defaultNetwork();
    config.fatTreeK = 4;
    config.fatTreeN = 2; // 16 hosts
    config.nic.scheme = scheme;
    config.nic.sendOverhead = 20;
    config.nic.recvOverhead = 20;
    return config;
}

DestSet
someMembers(std::size_t hosts)
{
    DestSet members(hosts);
    for (NodeId m : {1, 3, 6, 9, 12, 15})
        members.set(m);
    return members;
}

TEST(Collectives, BroadcastCompletesOnce)
{
    Network net(smallNet());
    CollectiveEngine coll(net);
    int completions = 0;
    Cycle done_at = 0;
    coll.broadcast(0, someMembers(net.numHosts()), 64,
                   [&](Cycle now) {
                       ++completions;
                       done_at = now;
                   });
    EXPECT_EQ(coll.pendingOps(), 1u);
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_EQ(completions, 1);
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(coll.pendingOps(), 0u);
    EXPECT_EQ(net.tracker().totalDeliveries(), 6u);
}

TEST(Collectives, BarrierReleasesOnlyAfterAllArrive)
{
    Network net(smallNet());
    CollectiveEngine coll(net);
    Cycle done_at = 0;
    const DestSet members = someMembers(net.numHosts());
    coll.barrier(0, members, [&](Cycle now) { done_at = now; });
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    ASSERT_GT(done_at, 0u);
    // Two network traversals (arrive + release) plus overheads.
    EXPECT_GT(done_at, 80u);
    // Arrivals (6 unicasts) + releases (6 copies) all delivered.
    EXPECT_EQ(net.tracker().totalDeliveries(), 12u);
}

TEST(Collectives, ReduceFinishesWhenRootHasAll)
{
    Network net(smallNet());
    CollectiveEngine coll(net);
    Cycle done_at = 0;
    coll.reduce(5, someMembers(net.numHosts()) - DestSet::of(16, {}),
                32, [&](Cycle now) { done_at = now; });
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_GT(done_at, 0u);
    // Every contribution landed at the root.
    EXPECT_EQ(net.nic(5).stats().packetsDelivered.value(), 6u);
}

TEST(Collectives, AllreduceIsReduceThenBroadcast)
{
    Network net(smallNet());
    CollectiveEngine coll(net);
    Cycle reduce_done = 0, allreduce_done = 0;

    Network net2(smallNet());
    CollectiveEngine coll2(net2);
    coll2.reduce(0, someMembers(net2.numHosts()), 32,
                 [&](Cycle now) { reduce_done = now; });
    net2.sim().runUntil([&net2] { return net2.idle(); }, 100000);

    coll.allreduce(0, someMembers(net.numHosts()), 32,
                   [&](Cycle now) { allreduce_done = now; });
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    ASSERT_GT(reduce_done, 0u);
    ASSERT_GT(allreduce_done, 0u);
    EXPECT_GT(allreduce_done, reduce_done);
}

class CollectivesBothSchemes
    : public ::testing::TestWithParam<McastScheme>
{
};

TEST_P(CollectivesBothSchemes, BarrierWorksUnderEitherScheme)
{
    Network net(smallNet(GetParam()));
    CollectiveEngine coll(net);
    Cycle done_at = 0;
    coll.barrier(2, someMembers(net.numHosts()) - DestSet::of(16, {}),
                 [&](Cycle now) { done_at = now; });
    net.armWatchdog(20000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 200000));
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(coll.pendingOps(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CollectivesBothSchemes,
                         ::testing::Values(McastScheme::Hardware,
                                           McastScheme::Software));

TEST(Collectives, HardwareBarrierBeatsSoftware)
{
    auto barrierTime = [](McastScheme scheme) {
        Network net(smallNet(scheme));
        CollectiveEngine coll(net);
        Cycle done_at = 0;
        DestSet everyone(net.numHosts());
        for (NodeId m = 1; m < static_cast<NodeId>(net.numHosts());
             ++m)
            everyone.set(m);
        coll.barrier(0, everyone, [&](Cycle now) { done_at = now; });
        net.sim().runUntil([&net] { return net.idle(); }, 200000);
        return done_at;
    };
    const Cycle hw = barrierTime(McastScheme::Hardware);
    const Cycle sw = barrierTime(McastScheme::Software);
    ASSERT_GT(hw, 0u);
    ASSERT_GT(sw, 0u);
    // The release broadcast dominates; single-phase worms shrink it.
    EXPECT_LT(hw, sw);
}

TEST(Collectives, SequentialBarriersReuseEngine)
{
    Network net(smallNet());
    CollectiveEngine coll(net);
    const DestSet members = someMembers(net.numHosts());
    int completions = 0;
    for (int round = 0; round < 3; ++round) {
        coll.barrier(0, members, [&](Cycle) { ++completions; });
        net.sim().runUntil([&net] { return net.idle(); }, 100000);
    }
    EXPECT_EQ(completions, 3);
    EXPECT_EQ(coll.pendingOps(), 0u);
}

TEST(Collectives, ConcurrentBroadcastsFromDifferentRoots)
{
    Network net(smallNet());
    CollectiveEngine coll(net);
    int completions = 0;
    coll.broadcast(0, DestSet::of(16, {4, 5, 6}), 32,
                   [&](Cycle) { ++completions; });
    coll.broadcast(9, DestSet::of(16, {10, 11}), 32,
                   [&](Cycle) { ++completions; });
    EXPECT_EQ(coll.pendingOps(), 2u);
    net.armWatchdog(10000);
    ASSERT_TRUE(
        net.sim().runUntil([&net] { return net.idle(); }, 100000));
    EXPECT_EQ(completions, 2);
}

} // namespace
} // namespace mdw
