/**
 * @file
 * Unit tests for the PortGraph structure.
 */

#include <gtest/gtest.h>

#include "topology/graph.hh"

namespace mdw {
namespace {

TEST(PortGraph, BuildAndQuery)
{
    PortGraph g;
    const SwitchId s0 = g.addSwitch(4);
    const SwitchId s1 = g.addSwitch(4);
    const NodeId h0 = g.addHost();
    EXPECT_EQ(g.numSwitches(), 2u);
    EXPECT_EQ(g.numHosts(), 1u);
    EXPECT_EQ(g.radix(s0), 4);

    g.connectSwitches(s0, 0, s1, 2);
    g.connectHost(h0, s0, 1);

    const PortPeer &p = g.peer(s0, 0);
    EXPECT_TRUE(p.isSwitch());
    EXPECT_EQ(p.sw, s1);
    EXPECT_EQ(p.port, 2);

    const PortPeer &back = g.peer(s1, 2);
    EXPECT_EQ(back.sw, s0);
    EXPECT_EQ(back.port, 0);

    const PortPeer &hp = g.peer(s0, 1);
    EXPECT_TRUE(hp.isHost());
    EXPECT_EQ(hp.host, h0);
    EXPECT_EQ(g.attach(h0).sw, s0);
    EXPECT_EQ(g.attach(h0).port, 1);

    EXPECT_FALSE(g.peer(s0, 3).connected());
    EXPECT_EQ(g.switchLinkCount(), 1u);
    g.validate();
}

TEST(PortGraph, ConnectivityDetection)
{
    PortGraph g;
    g.addSwitch(2);
    g.addSwitch(2);
    g.addSwitch(2);
    EXPECT_FALSE(g.connectedSwitches());
    g.connectSwitches(0, 0, 1, 0);
    EXPECT_FALSE(g.connectedSwitches());
    g.connectSwitches(1, 1, 2, 0);
    EXPECT_TRUE(g.connectedSwitches());
}

TEST(PortGraph, EmptyGraphIsConnected)
{
    PortGraph g;
    EXPECT_TRUE(g.connectedSwitches());
}

TEST(PortGraphDeath, DoubleConnectPanics)
{
    PortGraph g;
    g.addSwitch(2);
    g.addSwitch(2);
    g.connectSwitches(0, 0, 1, 0);
    EXPECT_DEATH(g.connectSwitches(0, 0, 1, 1), "busy");
}

TEST(PortGraphDeath, SelfLoopPanics)
{
    PortGraph g;
    g.addSwitch(2);
    EXPECT_DEATH(g.connectSwitches(0, 1, 0, 1), "itself");
}

TEST(PortGraphDeath, DoubleHostAttachPanics)
{
    PortGraph g;
    g.addSwitch(4);
    const NodeId h = g.addHost();
    g.connectHost(h, 0, 0);
    EXPECT_DEATH(g.connectHost(h, 0, 1), "already attached");
}

TEST(PortGraphDeath, OutOfRangePanics)
{
    PortGraph g;
    g.addSwitch(2);
    EXPECT_DEATH((void)g.radix(5), "out of range");
    EXPECT_DEATH((void)g.peer(0, 9), "out of range");
}

TEST(PortGraphDeath, ValidateCatchesUnattachedHost)
{
    PortGraph g;
    g.addSwitch(2);
    g.addHost(); // never attached
    EXPECT_DEATH(g.validate(), "unattached");
}

} // namespace
} // namespace mdw
