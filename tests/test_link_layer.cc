/**
 * @file
 * Unit tests for the link-level reliability layer: flit CRC
 * round-trips, NAK/replay timing, replay-buffer stalls and
 * wraparound, bidirectional corruption, flap ride-through, and the
 * retry-exhaustion escalation boundary.
 */

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "message/flit.hh"
#include "message/link_layer.hh"
#include "message/packet.hh"
#include "sim/channel.hh"

namespace mdw {
namespace {

PacketPtr
makePacket(PacketFactory &factory, int payload = 4)
{
    PacketDesc proto;
    proto.src = 0;
    proto.dests = DestSet::of(16, {1});
    proto.kind = PacketKind::Unicast;
    proto.headerFlits = 1;
    proto.payloadFlits = payload;
    return factory.make(std::move(proto));
}

LinkLayerParams
params(int retryLimit = 16, int replayBuffer = 16)
{
    LinkLayerParams p;
    p.ber = 0.0; // tests drive errors through the force* seams
    p.residual = 0.0;
    p.retryLimit = retryLimit;
    p.replayBufferFlits = replayBuffer;
    return p;
}

TEST(FlitCrc, SealThenVerify)
{
    PacketFactory factory;
    Flit flit(makePacket(factory), 2);
    flit.seal(7);
    EXPECT_TRUE(flit.crcOk());
    EXPECT_EQ(flit.linkSeq, 7u);
}

TEST(FlitCrc, CorruptionRoundTrip)
{
    PacketFactory factory;
    Flit flit(makePacket(factory), 0);
    flit.seal(0);
    ASSERT_TRUE(flit.crcOk());
    flit.corrupt(0x40);
    EXPECT_FALSE(flit.crcOk());
    // The model's error process is an XOR mask: undoing the exact
    // corruption restores a valid codeword.
    flit.corrupt(0x40);
    EXPECT_TRUE(flit.crcOk());
}

TEST(FlitCrc, EveryNonzeroMaskIsDetected)
{
    PacketFactory factory;
    Flit flit(makePacket(factory), 1);
    flit.seal(3);
    for (unsigned mask = 1; mask <= 0xffffu; ++mask) {
        Flit wire = flit;
        wire.corrupt(static_cast<std::uint16_t>(mask));
        ASSERT_FALSE(wire.crcOk()) << "mask " << mask << " undetected";
    }
}

TEST(FlitCrc, DistinguishesSequenceNumbers)
{
    PacketFactory factory;
    Flit flit(makePacket(factory), 0);
    flit.seal(0);
    const std::uint16_t crc0 = flit.crc;
    flit.seal(1);
    EXPECT_NE(flit.crc, crc0);
    // A stale seal (replayed flit carrying an old sequence number)
    // fails verification once linkSeq is bumped without resealing.
    flit.linkSeq = 9;
    EXPECT_FALSE(flit.crcOk());
}

TEST(LinkLayer, CleanPassThrough)
{
    PacketFactory factory;
    Channel<Flit> ch("ab", 2);
    LinkLayer layer("ab", 0, 4, 2, params(), 99);
    ch.setHook(&layer);

    ch.send(Flit(makePacket(factory), 0), 10);
    EXPECT_EQ(ch.peek(11), nullptr);
    ASSERT_NE(ch.peek(12), nullptr);
    const Flit got = ch.receive(12);
    EXPECT_TRUE(got.crcOk());
    EXPECT_EQ(got.linkSeq, 0u);
    EXPECT_EQ(layer.txSeq(), 1u);
    EXPECT_EQ(layer.rxSeq(), 1u);
    EXPECT_EQ(layer.stats().corrupted.value(), 0u);
    EXPECT_EQ(layer.stats().replays.value(), 0u);
}

TEST(LinkLayer, NakReplayDelaysOneRoundTrip)
{
    PacketFactory factory;
    const Cycle delay = 2;
    Channel<Flit> ch("ab", delay);
    LinkLayer layer("ab", 0, 4, delay, params(), 99);
    ch.setHook(&layer);

    layer.forceCorrupt(1);
    ch.send(Flit(makePacket(factory), 0), 10);
    // Corrupted traversal departs at 10, the NAK reaches the sender
    // at 10 + 2*delay, the replay departs the next cycle and lands
    // one wire delay later.
    const Cycle arrival = 10 + 2 * delay + 1 + delay;
    EXPECT_EQ(ch.nextArrival(), arrival);
    EXPECT_EQ(layer.stats().corrupted.value(), 1u);
    EXPECT_EQ(layer.stats().naks.value(), 1u);
    EXPECT_EQ(layer.stats().replays.value(), 1u);
    EXPECT_EQ(layer.lastNak(), 10 + 2 * delay);

    const Flit got = ch.receive(arrival);
    EXPECT_TRUE(got.crcOk());
    EXPECT_EQ(got.linkSeq, 0u);
    EXPECT_FALSE(layer.dead());
}

TEST(LinkLayer, ResidualErrorTaintsBranch)
{
    PacketFactory factory;
    factory.enableIntegrityTracking();
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(), 99);
    ch.setHook(&layer);

    PacketPtr pkt = makePacket(factory);
    ASSERT_NE(pkt->taint, nullptr);
    layer.forceCorrupt(1);
    layer.forceResidual(1);
    ch.send(Flit(pkt, 0), 5);
    // Accepted on the first traversal: no NAK, no replay.
    EXPECT_EQ(ch.nextArrival(), 6u);
    EXPECT_EQ(layer.stats().residualErrors.value(), 1u);
    EXPECT_EQ(layer.stats().naks.value(), 0u);
    EXPECT_TRUE(pkt->taint->tainted());

    // The taint is visible through descendants of a replication
    // branch but not through siblings split off beforehand.
    PacketPtr clean = makePacket(factory);
    EXPECT_FALSE(clean->taint->tainted());
}

TEST(LinkLayer, ResidualWithoutTaintPoisons)
{
    PacketFactory factory; // integrity tracking off: no taint nodes
    std::unordered_set<PacketId> poisoned;
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(), 99);
    layer.setPoisonRegistry(&poisoned);
    ch.setHook(&layer);

    PacketPtr pkt = makePacket(factory);
    ASSERT_EQ(pkt->taint, nullptr);
    layer.forceCorrupt(1);
    layer.forceResidual(1);
    ch.send(Flit(pkt, 0), 5);
    EXPECT_EQ(poisoned.count(pkt->id), 1u);
}

TEST(LinkLayer, FullReplayBufferStallsDeparture)
{
    PacketFactory factory;
    const Cycle delay = 4;
    Channel<Flit> ch("ab", delay);
    LinkLayer layer("ab", 0, 4, delay, params(16, 2), 99);
    ch.setHook(&layer);
    PacketPtr pkt = makePacket(factory);

    ch.send(Flit(pkt, 0), 0); // departs 0, ack returns at 8
    ch.send(Flit(pkt, 1), 1); // departs 1, ack returns at 9
    EXPECT_EQ(layer.replayOccupancy(), 2u);
    // Window full: the third flit must wait for flit 0's ack.
    ch.send(Flit(pkt, 2), 2);
    EXPECT_EQ(ch.nextArrival(), delay + 0); // flit 0 unaffected
    EXPECT_EQ(layer.stats().replayStallCycles.value(), 6u);
    (void)ch.receive(delay + 0);
    (void)ch.receive(delay + 1);
    // Flit 2 departed at 8 (the ack's return), landing at 12.
    const Flit got = ch.receive(8 + delay);
    EXPECT_EQ(got.linkSeq, 2u);
    EXPECT_EQ(layer.rxSeq(), 3u);
}

TEST(LinkLayer, ReplayBufferWrapsAroundUnderStreaming)
{
    PacketFactory factory;
    const Cycle delay = 3;
    Channel<Flit> ch("ab", delay);
    LinkLayer layer("ab", 0, 4, delay, params(16, 2), 99);
    ch.setHook(&layer);
    PacketPtr pkt = makePacket(factory, 16);

    // Stream three windows' worth of flits through the two-entry
    // replay buffer, draining arrivals as they land: the window must
    // recycle (occupancy bounded) and deliver strictly in sequence.
    Cycle now = 0;
    std::uint32_t delivered = 0;
    for (int i = 0; i < 8; ++i) {
        ch.send(Flit(pkt, i), now);
        ASSERT_LE(layer.replayOccupancy(), 2u);
        now = std::max(now + 1, ch.nextArrival());
        while (ch.peek(now) != nullptr) {
            const Flit got = ch.receive(now);
            ASSERT_EQ(got.linkSeq, delivered);
            ASSERT_TRUE(got.crcOk());
            ++delivered;
        }
    }
    EXPECT_EQ(delivered, 8u);
    EXPECT_EQ(layer.txSeq(), 8u);
    EXPECT_EQ(layer.rxSeq(), 8u);
    EXPECT_FALSE(layer.dead());
}

TEST(LinkLayer, SimultaneousBidirectionalCorruption)
{
    PacketFactory factory;
    const Cycle delay = 2;
    Channel<Flit> ab("ab", delay);
    Channel<Flit> ba("ba", delay);
    LinkLayer fwd("ab", 0, 4, delay, params(), 7);
    LinkLayer rev("ba", 1, 2, delay, params(), 8);
    ab.setHook(&fwd);
    ba.setHook(&rev);

    // Both directions corrupt the traversal departing at the same
    // cycle; each NAK/replay exchange resolves independently on its
    // own (modeled) control channel.
    fwd.forceCorrupt(1);
    rev.forceCorrupt(1);
    ab.send(Flit(makePacket(factory), 0), 20);
    ba.send(Flit(makePacket(factory), 0), 20);

    const Cycle arrival = 20 + 2 * delay + 1 + delay;
    EXPECT_EQ(ab.nextArrival(), arrival);
    EXPECT_EQ(ba.nextArrival(), arrival);
    EXPECT_EQ(fwd.stats().naks.value(), 1u);
    EXPECT_EQ(rev.stats().naks.value(), 1u);
    EXPECT_TRUE(ab.receive(arrival).crcOk());
    EXPECT_TRUE(ba.receive(arrival).crcOk());
    EXPECT_FALSE(fwd.dead());
    EXPECT_FALSE(rev.dead());
}

TEST(LinkLayer, EscalationBoundaryNMinusOneSucceeds)
{
    PacketFactory factory;
    const int limit = 4;
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(limit), 99);
    ch.setHook(&layer);

    // limit-1 corrupted traversals leave one attempt in the budget:
    // the flit is delivered and the link stays up.
    layer.forceCorrupt(limit - 1);
    ch.send(Flit(makePacket(factory), 0), 0);
    EXPECT_FALSE(layer.dead());
    EXPECT_EQ(layer.stats().replays.value(),
              static_cast<std::uint64_t>(limit - 1));
    EXPECT_EQ(ch.inFlight(), 1u);
    EXPECT_TRUE(ch.receive(ch.nextArrival()).crcOk());
}

TEST(LinkLayer, EscalationBoundaryNExhaustsAndFailsStop)
{
    PacketFactory factory;
    const int limit = 4;
    std::unordered_set<PacketId> poisoned;
    std::vector<Cycle> escalations;
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(limit), 99);
    layer.setPoisonRegistry(&poisoned);
    layer.setEscalation(
        [&escalations](Cycle when) { escalations.push_back(when); });
    ch.setHook(&layer);

    PacketPtr pkt = makePacket(factory);
    layer.forceCorrupt(limit);
    ch.send(Flit(pkt, 0), 0);
    EXPECT_TRUE(layer.dead());
    ASSERT_EQ(escalations.size(), 1u);
    EXPECT_EQ(ch.inFlight(), 0u); // dropped, nothing delivered
    EXPECT_EQ(layer.stats().dropped.value(), 1u);
    EXPECT_EQ(poisoned.count(pkt->id), 1u);

    // Later sends on the escalated direction drop without a second
    // escalation report.
    PacketPtr other = makePacket(factory);
    ch.send(Flit(other, 0), 50);
    EXPECT_EQ(layer.stats().dropped.value(), 2u);
    EXPECT_EQ(poisoned.count(other->id), 1u);
    EXPECT_EQ(escalations.size(), 1u);
}

TEST(LinkLayer, FlapRideThrough)
{
    PacketFactory factory;
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(), 99);
    FlapWindow flap;
    flap.sw = 0;
    flap.port = 4;
    flap.start = 5;
    flap.end = 10;
    layer.setFlaps({flap});
    ch.setHook(&layer);

    // Departures at 5 and 9 (after one retry timeout of 2*1+2) both
    // fall inside [5, 10); the second retry at 13 goes through.
    ch.send(Flit(makePacket(factory), 0), 5);
    EXPECT_EQ(layer.stats().timeouts.value(), 2u);
    EXPECT_EQ(layer.stats().replays.value(), 2u);
    EXPECT_EQ(ch.nextArrival(), 14u);
    EXPECT_TRUE(ch.receive(14).crcOk());
    EXPECT_FALSE(layer.dead());
}

TEST(LinkLayer, FlapLongerThanRetryBudgetEscalates)
{
    PacketFactory factory;
    std::vector<Cycle> escalations;
    std::unordered_set<PacketId> poisoned;
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(2), 99);
    FlapWindow flap;
    flap.sw = 0;
    flap.port = 4;
    flap.start = 0;
    flap.end = 1000;
    layer.setFlaps({flap});
    layer.setPoisonRegistry(&poisoned);
    layer.setEscalation(
        [&escalations](Cycle when) { escalations.push_back(when); });
    ch.setHook(&layer);

    PacketPtr pkt = makePacket(factory);
    ch.send(Flit(pkt, 0), 3);
    EXPECT_TRUE(layer.dead());
    ASSERT_EQ(escalations.size(), 1u);
    EXPECT_EQ(poisoned.count(pkt->id), 1u);
    EXPECT_EQ(ch.inFlight(), 0u);
}

TEST(LinkLayer, MarkDeadDropsLaterSends)
{
    PacketFactory factory;
    std::unordered_set<PacketId> poisoned;
    Channel<Flit> ch("ab", 1);
    LinkLayer layer("ab", 0, 4, 1, params(), 99);
    layer.setPoisonRegistry(&poisoned);
    ch.setHook(&layer);

    layer.markDead();
    PacketPtr pkt = makePacket(factory);
    ch.send(Flit(pkt, 0), 0);
    EXPECT_EQ(ch.inFlight(), 0u);
    EXPECT_EQ(layer.stats().dropped.value(), 1u);
    EXPECT_EQ(poisoned.count(pkt->id), 1u);
}

TEST(PacketTaint, PruneBranchIsolatesSiblings)
{
    PacketFactory factory;
    factory.enableIntegrityTracking();
    PacketDesc proto;
    proto.src = 0;
    proto.dests = DestSet::of(16, {1, 2, 3, 4});
    proto.kind = PacketKind::HwMulticast;
    proto.headerFlits = 2;
    proto.payloadFlits = 4;
    PacketPtr parent = factory.make(std::move(proto));

    PacketPtr left = pruneBranch(parent, DestSet::of(16, {1, 2}));
    PacketPtr right = pruneBranch(parent, DestSet::of(16, {3, 4}));
    ASSERT_NE(left->taint, nullptr);
    ASSERT_NE(right->taint, nullptr);

    // Corrupting one branch taints that branch and its descendants,
    // not the sibling subtree.
    left->taint->corrupted = true;
    PacketPtr leftChild = pruneBranch(left, DestSet::of(16, {1}));
    EXPECT_TRUE(left->taint->tainted());
    EXPECT_TRUE(leftChild->taint->tainted());
    EXPECT_FALSE(right->taint->tainted());
    EXPECT_FALSE(parent->taint->tainted());

    // Corruption on the common prefix (before the split) is seen by
    // every descendant.
    parent->taint->corrupted = true;
    EXPECT_TRUE(right->taint->tainted());
}

} // namespace
} // namespace mdw
