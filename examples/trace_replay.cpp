/**
 * @file
 * Trace-driven simulation: record a small communication pattern to a
 * trace file, replay it through the simulator, and report per-message
 * statistics. Demonstrates the workload/trace API for driving the
 * network with recorded or hand-crafted patterns instead of
 * synthetic arrivals.
 *
 * Run: ./trace_replay [key=value ...]  (e.g. trace=/path/to/file).
 * With v2=1 (and no trace=) the demo pattern is a dependency-carrying
 * v2 trace instead: a binary-tree reduction into node 0, a release
 * multicast gated on the reduction, and a final acknowledgement wave
 * gated on the release — each stage issued only after the completions
 * of the stage before it.
 */

#include <cstdio>

#include "core/presets.hh"
#include "workload/trace.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;

    Config cli;
    cli.parseArgs(argc, argv);

    NetworkConfig netcfg = defaultNetwork();
    netcfg.fatTreeK = 4;
    netcfg.fatTreeN = 2; // 16 hosts
    Network net(netcfg);

    std::string path = cli.getString("trace", "");
    const bool v2 = cli.getBool("v2", false);
    if (path.empty() && v2) {
        // Dependency-carrying demo: reduce -> release -> acknowledge.
        path = "/tmp/mdworm_demo_v2.trace";
        std::vector<TraceEvent> events;
        std::uint64_t next_id = 0;
        std::vector<std::uint64_t> prev_stage;
        for (int stride = 1; stride < 16; stride *= 2) {
            std::vector<std::uint64_t> stage;
            for (NodeId n = 0; n < 16;
                 n = static_cast<NodeId>(n + 2 * stride)) {
                TraceEvent reduce;
                reduce.id = ++next_id;
                reduce.deps = prev_stage;
                reduce.when = 0;
                reduce.src = static_cast<NodeId>(n + stride);
                reduce.spec.dest = n;
                reduce.spec.payloadFlits = 16;
                stage.push_back(reduce.id);
                events.push_back(std::move(reduce));
            }
            prev_stage = std::move(stage);
        }
        TraceEvent release;
        release.id = ++next_id;
        release.deps = prev_stage;
        release.when = 0;
        release.src = 0;
        release.spec.multicast = true;
        release.spec.dests = DestSet(16);
        for (NodeId n = 1; n < 16; ++n)
            release.spec.dests.set(n);
        release.spec.payloadFlits = 64;
        const std::uint64_t release_id = release.id;
        events.push_back(std::move(release));
        for (NodeId n = 1; n < 16; ++n) {
            TraceEvent ack;
            ack.id = ++next_id;
            ack.deps = {release_id};
            ack.when = 0;
            ack.src = n;
            ack.spec.dest = 0;
            ack.spec.payloadFlits = 8;
            events.push_back(std::move(ack));
        }
        TraceTraffic::writeFile(path, events);
        std::printf("wrote v2 dependency trace to %s\n", path.c_str());
    } else if (path.empty()) {
        // No trace given: write a demo pattern — a neighbor shift,
        // two staggered multicasts, and a reduction-like fan-in.
        path = "/tmp/mdworm_demo.trace";
        std::vector<TraceEvent> events;
        for (NodeId n = 0; n < 16; ++n) {
            TraceEvent shift;
            shift.when = 0;
            shift.src = n;
            shift.spec.dest = static_cast<NodeId>((n + 1) % 16);
            shift.spec.payloadFlits = 32;
            events.push_back(shift);
        }
        for (Cycle when : {200, 400}) {
            TraceEvent mcast;
            mcast.when = when;
            mcast.src = static_cast<NodeId>(when / 200 - 1);
            mcast.spec.multicast = true;
            mcast.spec.dests =
                DestSet::of(16, {3, 5, 7, 9, 11, 13, 15});
            mcast.spec.dests.clear(mcast.src);
            mcast.spec.payloadFlits = 64;
            events.push_back(mcast);
        }
        for (NodeId n = 1; n < 16; ++n) {
            TraceEvent fanin;
            fanin.when = 800;
            fanin.src = n;
            fanin.spec.dest = 0;
            fanin.spec.payloadFlits = 8;
            events.push_back(fanin);
        }
        TraceTraffic::writeFile(path, events);
        std::printf("wrote demo trace to %s\n", path.c_str());
    }

    TraceTraffic trace = TraceTraffic::fromFile(path, net.numHosts());
    std::printf("replaying %zu events on %s\n\n", trace.size(),
                net.topology().describe().c_str());
    net.attachTraffic(&trace);
    net.armWatchdog(50000);

    const bool done = net.sim().runUntil(
        [&net, &trace] {
            return trace.pending() == 0 && net.idle();
        },
        1000000);
    if (!done) {
        std::printf("ERROR: trace did not drain\n");
        return 1;
    }

    const McastTracker &tracker = net.tracker();
    std::printf("completed in %llu cycles\n",
                static_cast<unsigned long long>(net.sim().now()));
    std::printf("unicasts : %llu, avg latency %.1f cycles\n",
                static_cast<unsigned long long>(
                    tracker.unicastLatency().count()),
                tracker.unicastLatency().mean());
    std::printf("multicasts: %llu, avg last-copy latency %.1f cycles\n",
                static_cast<unsigned long long>(
                    tracker.mcastLastLatency().count()),
                tracker.mcastLastLatency().mean());
    std::printf("deliveries: %llu\n",
                static_cast<unsigned long long>(
                    tracker.totalDeliveries()));

    // Closed-loop accounting: every trace event must have retired.
    const std::uint64_t retired =
        tracker.totalCompleted() + tracker.partialCompleted();
    if (retired != trace.size()) {
        std::printf("ERROR: %llu of %zu events retired\n",
                    static_cast<unsigned long long>(retired),
                    trace.size());
        return 1;
    }
    std::printf("all %zu events completed\n", trace.size());
    return 0;
}
