/**
 * @file
 * Quickstart: build a 16-node bidirectional MIN with central-buffer
 * switches, send one hardware multidestination broadcast and one
 * unicast, and print what happened.
 *
 * Run: ./quickstart [key=value ...]   (e.g. scheme=sw arch=ib)
 */

#include <cstdio>

#include "core/presets.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;

    Config cli;
    cli.parseArgs(argc, argv);

    NetworkConfig netcfg = defaultNetwork();
    netcfg.fatTreeK = 4;
    netcfg.fatTreeN = 2; // 16 hosts
    TrafficParams traffic = defaultTraffic();
    ExperimentParams expcfg = defaultExperiment();
    applyOverrides(cli, netcfg, traffic, expcfg);

    Network net(netcfg);
    std::printf("topology : %s\n", net.topology().describe().c_str());
    std::printf("switch   : %s\n", toString(netcfg.arch));
    std::printf("multicast: %s, %s encoding\n",
                toString(netcfg.nic.scheme),
                toString(netcfg.nic.encoding));
    std::printf("header   : %d flits for a multicast worm\n\n",
                net.mcastHeaderFlits());

    // Broadcast 64 payload flits from node 0 to everyone else.
    DestSet everyone(net.numHosts());
    for (NodeId n = 1; n < static_cast<NodeId>(net.numHosts()); ++n)
        everyone.set(n);
    const Cycle t0 = net.sim().now();
    net.nic(0).postMulticast(everyone, 64, t0);

    // And an unrelated unicast from node 5 to node 10.
    net.nic(5).postUnicast(10, 64, t0);

    net.armWatchdog(10000);
    const bool done =
        net.sim().runUntil([&net] { return net.idle(); }, 100000);
    if (!done) {
        std::printf("ERROR: traffic did not drain\n");
        return 1;
    }

    const McastTracker &tracker = net.tracker();
    std::printf("broadcast to %zu nodes:\n", everyone.count());
    std::printf("  last-copy latency : %.0f cycles\n",
                tracker.mcastLastLatency().mean());
    std::printf("  avg-copy latency  : %.0f cycles\n",
                tracker.mcastAvgLatency().mean());
    std::printf("unicast latency     : %.0f cycles\n",
                tracker.unicastLatency().mean());

    const NetworkTotals totals = net.totals();
    std::printf("\nswitch totals: %llu flits routed, "
                "%llu worm replications\n",
                static_cast<unsigned long long>(totals.flitsIn),
                static_cast<unsigned long long>(totals.replications));
    std::printf("simulated %llu cycles\n",
                static_cast<unsigned long long>(net.sim().now()));
    return 0;
}
