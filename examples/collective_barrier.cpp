/**
 * @file
 * MPI-style collective operations through the CollectiveEngine: a
 * barrier (arrive unicasts + release multicast), a broadcast, and an
 * allreduce among a communicator subset, timed under all three
 * multicast implementations. This is the broadcast+reduction pattern
 * the paper's introduction motivates.
 *
 * Run: ./collective_barrier [key=value ...]  (e.g. members=32)
 */

#include <cstdio>

#include "core/collectives.hh"
#include "core/presets.hh"

namespace {

using namespace mdw;

struct OpTimes
{
    double barrier = 0.0;
    double broadcast = 0.0;
    double allreduce = 0.0;
};

Cycle
timeOp(Network &net, const std::function<void(CollectiveEngine::Done)>
                         &start)
{
    const Cycle begin = net.sim().now();
    bool finished = false;
    Cycle done_at = 0;
    start([&](Cycle now) {
        finished = true;
        done_at = now;
    });
    if (!net.sim().runUntil([&] { return finished; }, 1000000)) {
        std::fprintf(stderr, "collective did not complete\n");
        std::exit(1);
    }
    // Let stragglers (e.g. slow release copies) drain between ops.
    net.sim().runUntil([&net] { return net.idle(); }, 100000);
    return done_at - begin;
}

OpTimes
run(Scheme scheme, int members_wanted, int rounds)
{
    NetworkConfig netcfg = networkFor(scheme);
    netcfg.nic.sendOverhead = 50;
    netcfg.nic.recvOverhead = 50;
    Network net(netcfg);
    CollectiveEngine coll(net);

    const NodeId root = 0;
    DestSet members(net.numHosts());
    for (NodeId m = 1;
         m <= members_wanted && m < static_cast<NodeId>(net.numHosts());
         ++m) {
        members.set(m);
    }

    Sampler barrier, broadcast, allreduce;
    for (int round = 0; round < rounds; ++round) {
        barrier.add(static_cast<double>(timeOp(
            net, [&](CollectiveEngine::Done done) {
                coll.barrier(root, members, std::move(done));
            })));
        broadcast.add(static_cast<double>(timeOp(
            net, [&](CollectiveEngine::Done done) {
                coll.broadcast(root, members, 64, std::move(done));
            })));
        allreduce.add(static_cast<double>(timeOp(
            net, [&](CollectiveEngine::Done done) {
                coll.allreduce(root, members, 16, std::move(done));
            })));
    }
    return OpTimes{barrier.mean(), broadcast.mean(), allreduce.mean()};
}

} // namespace

int
main(int argc, char **argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    const int members =
        static_cast<int>(cli.getInt("members", 31));
    const int rounds = static_cast<int>(cli.getInt("rounds", 4));

    std::printf("collective operations on a 64-node bidirectional "
                "MIN\n%d members + root, %d rounds, cycles per "
                "operation\n\n",
                members, rounds);
    std::printf("%-10s %10s %10s %10s\n", "scheme", "barrier",
                "broadcast", "allreduce");
    for (Scheme scheme : kAllSchemes) {
        const OpTimes t = run(scheme, members, rounds);
        std::printf("%-10s %10.0f %10.0f %10.0f\n", toString(scheme),
                    t.barrier, t.broadcast, t.allreduce);
    }
    std::printf("\nEvery operation contains one release/result "
                "broadcast; single-phase\nmultidestination worms cut "
                "it to one traversal plus one start-up.\n");
    return 0;
}
