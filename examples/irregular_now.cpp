/**
 * @file
 * Multicast on an irregular network of workstations (paper Fig 1c):
 * a random switch graph with up*-down* routing. Demonstrates that
 * the multidestination-worm machinery — reachability decode, LCA
 * routing, asynchronous replication, reservation-based deadlock
 * freedom — carries over unchanged from the bidirectional MIN.
 *
 * Run: ./irregular_now [key=value ...]  (e.g. seed=7 switches=20)
 */

#include <cstdio>

#include "core/presets.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;

    Config cli;
    cli.parseArgs(argc, argv);

    NetworkConfig netcfg = defaultNetwork();
    netcfg.topo = TopologyKind::Irregular;
    netcfg.irregular.switches =
        static_cast<int>(cli.getInt("switches", 16));
    netcfg.irregular.hosts = static_cast<int>(cli.getInt("hosts", 32));
    netcfg.irregular.radix = static_cast<int>(cli.getInt("radix", 8));
    netcfg.irregular.extraLinks =
        static_cast<int>(cli.getInt("extraLinks", 8));
    netcfg.seed = cli.getU64("seed", 11);
    const bool quick = cli.getBool("quick", false);

    {
        Network probe(netcfg);
        std::printf("topology: %s\n\n",
                    probe.topology().describe().c_str());
    }

    std::printf("multiple multicast on the NOW (load 0.015, degree 6, 32-flit "
                "payload)\n\n");
    std::printf("%-10s %10s %10s %10s %6s\n", "scheme", "mc-avg",
                "mc-last", "deliv", "sat");

    for (Scheme scheme : kAllSchemes) {
        NetworkConfig net = networkFor(scheme);
        net.topo = TopologyKind::Irregular;
        net.irregular = netcfg.irregular;
        net.seed = netcfg.seed;

        TrafficParams traffic;
        traffic.pattern = TrafficPattern::MultipleMulticast;
        traffic.load = 0.015;
        traffic.payloadFlits = 32;
        traffic.mcastDegree = 6;

        ExperimentParams params;
        params.warmup = quick ? 2000 : 10000;
        params.measure = quick ? 6000 : 30000;

        const ExperimentResult r =
            Experiment(net, traffic, params).run();
        std::printf("%-10s %10.1f %10.1f %10.3f %6s\n",
                    toString(scheme), r.mcastAvgAvg(), r.mcastLastAvg(),
                    r.deliveredLoad(), r.saturated ? "yes" : "no");
    }

    std::printf("\nup*-down* orientation keeps down-links acyclic, so "
                "the same reservation\nrule that protects the MIN "
                "protects an arbitrary NOW.\n");
    return 0;
}
