/**
 * @file
 * Parallel load sweep: run the default multiple-multicast workload
 * across a grid of offered loads on a pool of worker threads, then
 * print the latency curve and the sweep's audit report. The numbers
 * are identical at any thread count — try it:
 *
 *   ./load_sweep threads=1 > a.txt
 *   ./load_sweep threads=8 > b.txt
 *   diff a.txt b.txt            # empty
 *
 * Other knobs: baseSeed=N derives an isolated RNG stream per run
 * from one base seed; all the usual key=value overrides apply.
 */

#include <cstdio>

#include "core/presets.hh"
#include "core/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;

    Config cli;
    cli.parseArgs(argc, argv);
    SweepOptions options;
    options.threads = static_cast<int>(cli.getInt("threads", 0));
    options.deriveSeeds = cli.has("baseSeed");
    options.baseSeed = cli.getU64("baseSeed", 0);

    NetworkConfig netcfg = defaultNetwork();
    TrafficParams traffic = defaultTraffic();
    ExperimentParams expcfg = defaultExperiment();
    expcfg.warmup = 3000;
    expcfg.measure = 8000;
    expcfg.drainLimit = 60000;
    applyOverrides(cli, netcfg, traffic, expcfg);

    const double loads[] = {0.01, 0.02, 0.04, 0.08, 0.12, 0.16};
    SweepRunner runner(options);
    for (double load : loads) {
        TrafficParams t = traffic;
        t.load = load;
        char label[32];
        std::snprintf(label, sizeof(label), "load=%.2f", load);
        runner.add(label, netcfg, t, expcfg);
    }
    runner.run();

    std::printf("%s\n", resultHeader().c_str());
    for (std::size_t i = 0; i < runner.size(); ++i) {
        const ExperimentResult &r = runner.results()[i];
        std::printf("%s\n",
                    formatResultRow(runner.report().runs[i].label, r)
                        .c_str());
    }
    // Wall times vary run to run, so the audit trail goes to stderr
    // — stdout stays diffable across thread counts.
    std::fputs(runner.report().summary().c_str(), stderr);
    return 0;
}
