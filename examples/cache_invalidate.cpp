/**
 * @file
 * DSM cache-invalidation scenario (the paper's motivating DSM use
 * case, cf. Dai/Panda ICPP'96): directories multicast short
 * invalidation messages to sharer sets while ordinary read/write
 * traffic runs in the background. Invalidation latency is the
 * *last-copy* latency — the writer stalls until every sharer has
 * acknowledged — so the multicast implementation directly bounds
 * write latency.
 *
 * Run: ./cache_invalidate [key=value ...]
 */

#include <cstdio>

#include "core/presets.hh"

int
main(int argc, char **argv)
{
    using namespace mdw;

    Config cli;
    cli.parseArgs(argc, argv);
    const bool quick = cli.getBool("quick", false);

    std::printf("DSM cache invalidation: 16-flit invalidations to "
                "random sharer sets\nover a 30%% unicast background "
                "(64-node bidirectional MIN)\n\n");
    std::printf("%-10s %14s %14s %14s\n", "scheme", "inval-last",
                "inval-avg", "bg-unicast");

    for (Scheme scheme : kAllSchemes) {
        NetworkConfig net = networkFor(scheme);
        // Invalidations are latency-critical: model a lean protocol
        // processor with small software overheads.
        net.nic.sendOverhead = 40;
        net.nic.recvOverhead = 40;

        TrafficParams traffic;
        traffic.pattern = TrafficPattern::Bimodal;
        traffic.load = 0.06;
        traffic.payloadFlits = 16; // an invalidation + address block
        traffic.mcastDegree = 8;   // sharer-set size
        traffic.mcastFraction = 0.7;

        ExperimentParams params;
        params.warmup = quick ? 2000 : 10000;
        params.measure = quick ? 6000 : 30000;

        const ExperimentResult r =
            Experiment(net, traffic, params).run();
        std::printf("%-10s %14.1f %14.1f %14.1f%s\n", toString(scheme),
                    r.mcastLastAvg(), r.mcastAvgAvg(), r.unicastAvg(),
                    r.saturated ? "  (saturated)" : "");
    }

    std::printf("\nThe writer resumes after the LAST invalidation "
                "lands; single-phase\nmultidestination worms keep "
                "that bound tight, while the software tree\nadds a "
                "full protocol-processor turnaround per phase.\n");
    return 0;
}
