# Empty compiler generated dependencies file for fig_multiple_multicast.
# This may be replaced when dependencies are built.
