file(REMOVE_RECURSE
  "CMakeFiles/fig_multiple_multicast.dir/fig_multiple_multicast.cc.o"
  "CMakeFiles/fig_multiple_multicast.dir/fig_multiple_multicast.cc.o.d"
  "fig_multiple_multicast"
  "fig_multiple_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_multiple_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
