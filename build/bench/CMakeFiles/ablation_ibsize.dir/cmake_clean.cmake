file(REMOVE_RECURSE
  "CMakeFiles/ablation_ibsize.dir/ablation_ibsize.cc.o"
  "CMakeFiles/ablation_ibsize.dir/ablation_ibsize.cc.o.d"
  "ablation_ibsize"
  "ablation_ibsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ibsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
