# Empty dependencies file for ablation_ibsize.
# This may be replaced when dependencies are built.
