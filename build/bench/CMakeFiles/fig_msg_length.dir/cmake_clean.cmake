file(REMOVE_RECURSE
  "CMakeFiles/fig_msg_length.dir/fig_msg_length.cc.o"
  "CMakeFiles/fig_msg_length.dir/fig_msg_length.cc.o.d"
  "fig_msg_length"
  "fig_msg_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_msg_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
