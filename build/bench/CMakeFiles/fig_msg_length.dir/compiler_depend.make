# Empty compiler generated dependencies file for fig_msg_length.
# This may be replaced when dependencies are built.
