# Empty dependencies file for fig_bimodal.
# This may be replaced when dependencies are built.
