file(REMOVE_RECURSE
  "CMakeFiles/fig_bimodal.dir/fig_bimodal.cc.o"
  "CMakeFiles/fig_bimodal.dir/fig_bimodal.cc.o.d"
  "fig_bimodal"
  "fig_bimodal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
