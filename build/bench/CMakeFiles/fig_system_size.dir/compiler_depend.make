# Empty compiler generated dependencies file for fig_system_size.
# This may be replaced when dependencies are built.
