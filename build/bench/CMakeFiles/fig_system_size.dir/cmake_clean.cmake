file(REMOVE_RECURSE
  "CMakeFiles/fig_system_size.dir/fig_system_size.cc.o"
  "CMakeFiles/fig_system_size.dir/fig_system_size.cc.o.d"
  "fig_system_size"
  "fig_system_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_system_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
