file(REMOVE_RECURSE
  "CMakeFiles/tab_params.dir/tab_params.cc.o"
  "CMakeFiles/tab_params.dir/tab_params.cc.o.d"
  "tab_params"
  "tab_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
