# Empty dependencies file for tab_params.
# This may be replaced when dependencies are built.
