file(REMOVE_RECURSE
  "CMakeFiles/ablation_cbsize.dir/ablation_cbsize.cc.o"
  "CMakeFiles/ablation_cbsize.dir/ablation_cbsize.cc.o.d"
  "ablation_cbsize"
  "ablation_cbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
