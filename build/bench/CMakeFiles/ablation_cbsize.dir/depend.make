# Empty dependencies file for ablation_cbsize.
# This may be replaced when dependencies are built.
