file(REMOVE_RECURSE
  "CMakeFiles/micro_switch.dir/micro_switch.cc.o"
  "CMakeFiles/micro_switch.dir/micro_switch.cc.o.d"
  "micro_switch"
  "micro_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
