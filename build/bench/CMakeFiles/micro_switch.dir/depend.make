# Empty dependencies file for micro_switch.
# This may be replaced when dependencies are built.
