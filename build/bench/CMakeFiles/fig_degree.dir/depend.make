# Empty dependencies file for fig_degree.
# This may be replaced when dependencies are built.
