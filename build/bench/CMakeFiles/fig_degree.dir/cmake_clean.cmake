file(REMOVE_RECURSE
  "CMakeFiles/fig_degree.dir/fig_degree.cc.o"
  "CMakeFiles/fig_degree.dir/fig_degree.cc.o.d"
  "fig_degree"
  "fig_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
