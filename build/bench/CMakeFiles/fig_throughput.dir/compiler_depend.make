# Empty compiler generated dependencies file for fig_throughput.
# This may be replaced when dependencies are built.
