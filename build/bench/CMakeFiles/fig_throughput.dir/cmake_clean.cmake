file(REMOVE_RECURSE
  "CMakeFiles/fig_throughput.dir/fig_throughput.cc.o"
  "CMakeFiles/fig_throughput.dir/fig_throughput.cc.o.d"
  "fig_throughput"
  "fig_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
