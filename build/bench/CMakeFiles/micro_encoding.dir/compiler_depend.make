# Empty compiler generated dependencies file for micro_encoding.
# This may be replaced when dependencies are built.
