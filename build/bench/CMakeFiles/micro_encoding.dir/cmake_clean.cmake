file(REMOVE_RECURSE
  "CMakeFiles/micro_encoding.dir/micro_encoding.cc.o"
  "CMakeFiles/micro_encoding.dir/micro_encoding.cc.o.d"
  "micro_encoding"
  "micro_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
