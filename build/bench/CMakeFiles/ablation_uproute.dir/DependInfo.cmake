
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_uproute.cc" "bench/CMakeFiles/ablation_uproute.dir/ablation_uproute.cc.o" "gcc" "bench/CMakeFiles/ablation_uproute.dir/ablation_uproute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
