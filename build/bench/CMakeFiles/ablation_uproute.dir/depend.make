# Empty dependencies file for ablation_uproute.
# This may be replaced when dependencies are built.
