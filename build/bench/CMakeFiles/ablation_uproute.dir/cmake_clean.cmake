file(REMOVE_RECURSE
  "CMakeFiles/ablation_uproute.dir/ablation_uproute.cc.o"
  "CMakeFiles/ablation_uproute.dir/ablation_uproute.cc.o.d"
  "ablation_uproute"
  "ablation_uproute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uproute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
