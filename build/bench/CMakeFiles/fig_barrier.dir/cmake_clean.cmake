file(REMOVE_RECURSE
  "CMakeFiles/fig_barrier.dir/fig_barrier.cc.o"
  "CMakeFiles/fig_barrier.dir/fig_barrier.cc.o.d"
  "fig_barrier"
  "fig_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
