# Empty dependencies file for fig_barrier.
# This may be replaced when dependencies are built.
