
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/fat_tree.cc" "src/CMakeFiles/mdw_topology.dir/topology/fat_tree.cc.o" "gcc" "src/CMakeFiles/mdw_topology.dir/topology/fat_tree.cc.o.d"
  "/root/repo/src/topology/graph.cc" "src/CMakeFiles/mdw_topology.dir/topology/graph.cc.o" "gcc" "src/CMakeFiles/mdw_topology.dir/topology/graph.cc.o.d"
  "/root/repo/src/topology/irregular.cc" "src/CMakeFiles/mdw_topology.dir/topology/irregular.cc.o" "gcc" "src/CMakeFiles/mdw_topology.dir/topology/irregular.cc.o.d"
  "/root/repo/src/topology/routing.cc" "src/CMakeFiles/mdw_topology.dir/topology/routing.cc.o" "gcc" "src/CMakeFiles/mdw_topology.dir/topology/routing.cc.o.d"
  "/root/repo/src/topology/topology.cc" "src/CMakeFiles/mdw_topology.dir/topology/topology.cc.o" "gcc" "src/CMakeFiles/mdw_topology.dir/topology/topology.cc.o.d"
  "/root/repo/src/topology/uni_min.cc" "src/CMakeFiles/mdw_topology.dir/topology/uni_min.cc.o" "gcc" "src/CMakeFiles/mdw_topology.dir/topology/uni_min.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdw_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
