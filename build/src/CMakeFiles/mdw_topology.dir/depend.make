# Empty dependencies file for mdw_topology.
# This may be replaced when dependencies are built.
