file(REMOVE_RECURSE
  "libmdw_topology.a"
)
