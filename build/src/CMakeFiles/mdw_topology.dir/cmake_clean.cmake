file(REMOVE_RECURSE
  "CMakeFiles/mdw_topology.dir/topology/fat_tree.cc.o"
  "CMakeFiles/mdw_topology.dir/topology/fat_tree.cc.o.d"
  "CMakeFiles/mdw_topology.dir/topology/graph.cc.o"
  "CMakeFiles/mdw_topology.dir/topology/graph.cc.o.d"
  "CMakeFiles/mdw_topology.dir/topology/irregular.cc.o"
  "CMakeFiles/mdw_topology.dir/topology/irregular.cc.o.d"
  "CMakeFiles/mdw_topology.dir/topology/routing.cc.o"
  "CMakeFiles/mdw_topology.dir/topology/routing.cc.o.d"
  "CMakeFiles/mdw_topology.dir/topology/topology.cc.o"
  "CMakeFiles/mdw_topology.dir/topology/topology.cc.o.d"
  "CMakeFiles/mdw_topology.dir/topology/uni_min.cc.o"
  "CMakeFiles/mdw_topology.dir/topology/uni_min.cc.o.d"
  "libmdw_topology.a"
  "libmdw_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
