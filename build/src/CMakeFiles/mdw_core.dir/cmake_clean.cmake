file(REMOVE_RECURSE
  "CMakeFiles/mdw_core.dir/core/collectives.cc.o"
  "CMakeFiles/mdw_core.dir/core/collectives.cc.o.d"
  "CMakeFiles/mdw_core.dir/core/experiment.cc.o"
  "CMakeFiles/mdw_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/mdw_core.dir/core/hw_barrier.cc.o"
  "CMakeFiles/mdw_core.dir/core/hw_barrier.cc.o.d"
  "CMakeFiles/mdw_core.dir/core/network.cc.o"
  "CMakeFiles/mdw_core.dir/core/network.cc.o.d"
  "CMakeFiles/mdw_core.dir/core/presets.cc.o"
  "CMakeFiles/mdw_core.dir/core/presets.cc.o.d"
  "libmdw_core.a"
  "libmdw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
