# Empty compiler generated dependencies file for mdw_core.
# This may be replaced when dependencies are built.
