file(REMOVE_RECURSE
  "libmdw_switch.a"
)
