file(REMOVE_RECURSE
  "CMakeFiles/mdw_switch.dir/switch/arbiter.cc.o"
  "CMakeFiles/mdw_switch.dir/switch/arbiter.cc.o.d"
  "CMakeFiles/mdw_switch.dir/switch/barrier_unit.cc.o"
  "CMakeFiles/mdw_switch.dir/switch/barrier_unit.cc.o.d"
  "CMakeFiles/mdw_switch.dir/switch/central_buffer_switch.cc.o"
  "CMakeFiles/mdw_switch.dir/switch/central_buffer_switch.cc.o.d"
  "CMakeFiles/mdw_switch.dir/switch/central_queue.cc.o"
  "CMakeFiles/mdw_switch.dir/switch/central_queue.cc.o.d"
  "CMakeFiles/mdw_switch.dir/switch/input_buffer_switch.cc.o"
  "CMakeFiles/mdw_switch.dir/switch/input_buffer_switch.cc.o.d"
  "CMakeFiles/mdw_switch.dir/switch/switch_base.cc.o"
  "CMakeFiles/mdw_switch.dir/switch/switch_base.cc.o.d"
  "libmdw_switch.a"
  "libmdw_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
