# Empty compiler generated dependencies file for mdw_switch.
# This may be replaced when dependencies are built.
