
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switch/arbiter.cc" "src/CMakeFiles/mdw_switch.dir/switch/arbiter.cc.o" "gcc" "src/CMakeFiles/mdw_switch.dir/switch/arbiter.cc.o.d"
  "/root/repo/src/switch/barrier_unit.cc" "src/CMakeFiles/mdw_switch.dir/switch/barrier_unit.cc.o" "gcc" "src/CMakeFiles/mdw_switch.dir/switch/barrier_unit.cc.o.d"
  "/root/repo/src/switch/central_buffer_switch.cc" "src/CMakeFiles/mdw_switch.dir/switch/central_buffer_switch.cc.o" "gcc" "src/CMakeFiles/mdw_switch.dir/switch/central_buffer_switch.cc.o.d"
  "/root/repo/src/switch/central_queue.cc" "src/CMakeFiles/mdw_switch.dir/switch/central_queue.cc.o" "gcc" "src/CMakeFiles/mdw_switch.dir/switch/central_queue.cc.o.d"
  "/root/repo/src/switch/input_buffer_switch.cc" "src/CMakeFiles/mdw_switch.dir/switch/input_buffer_switch.cc.o" "gcc" "src/CMakeFiles/mdw_switch.dir/switch/input_buffer_switch.cc.o.d"
  "/root/repo/src/switch/switch_base.cc" "src/CMakeFiles/mdw_switch.dir/switch/switch_base.cc.o" "gcc" "src/CMakeFiles/mdw_switch.dir/switch/switch_base.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
