file(REMOVE_RECURSE
  "libmdw_host.a"
)
