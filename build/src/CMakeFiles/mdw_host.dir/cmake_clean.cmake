file(REMOVE_RECURSE
  "CMakeFiles/mdw_host.dir/host/mcast_tracker.cc.o"
  "CMakeFiles/mdw_host.dir/host/mcast_tracker.cc.o.d"
  "CMakeFiles/mdw_host.dir/host/nic.cc.o"
  "CMakeFiles/mdw_host.dir/host/nic.cc.o.d"
  "CMakeFiles/mdw_host.dir/host/sw_mcast.cc.o"
  "CMakeFiles/mdw_host.dir/host/sw_mcast.cc.o.d"
  "libmdw_host.a"
  "libmdw_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
