# Empty dependencies file for mdw_host.
# This may be replaced when dependencies are built.
