file(REMOVE_RECURSE
  "CMakeFiles/mdw_workload.dir/workload/trace.cc.o"
  "CMakeFiles/mdw_workload.dir/workload/trace.cc.o.d"
  "CMakeFiles/mdw_workload.dir/workload/traffic.cc.o"
  "CMakeFiles/mdw_workload.dir/workload/traffic.cc.o.d"
  "libmdw_workload.a"
  "libmdw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
