# Empty dependencies file for mdw_workload.
# This may be replaced when dependencies are built.
