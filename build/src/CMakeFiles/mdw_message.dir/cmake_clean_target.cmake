file(REMOVE_RECURSE
  "libmdw_message.a"
)
