# Empty dependencies file for mdw_message.
# This may be replaced when dependencies are built.
