file(REMOVE_RECURSE
  "CMakeFiles/mdw_message.dir/message/dest_set.cc.o"
  "CMakeFiles/mdw_message.dir/message/dest_set.cc.o.d"
  "CMakeFiles/mdw_message.dir/message/encoding.cc.o"
  "CMakeFiles/mdw_message.dir/message/encoding.cc.o.d"
  "CMakeFiles/mdw_message.dir/message/flit.cc.o"
  "CMakeFiles/mdw_message.dir/message/flit.cc.o.d"
  "CMakeFiles/mdw_message.dir/message/packet.cc.o"
  "CMakeFiles/mdw_message.dir/message/packet.cc.o.d"
  "libmdw_message.a"
  "libmdw_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
