
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/message/dest_set.cc" "src/CMakeFiles/mdw_message.dir/message/dest_set.cc.o" "gcc" "src/CMakeFiles/mdw_message.dir/message/dest_set.cc.o.d"
  "/root/repo/src/message/encoding.cc" "src/CMakeFiles/mdw_message.dir/message/encoding.cc.o" "gcc" "src/CMakeFiles/mdw_message.dir/message/encoding.cc.o.d"
  "/root/repo/src/message/flit.cc" "src/CMakeFiles/mdw_message.dir/message/flit.cc.o" "gcc" "src/CMakeFiles/mdw_message.dir/message/flit.cc.o.d"
  "/root/repo/src/message/packet.cc" "src/CMakeFiles/mdw_message.dir/message/packet.cc.o" "gcc" "src/CMakeFiles/mdw_message.dir/message/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
