file(REMOVE_RECURSE
  "libmdw_sim.a"
)
