file(REMOVE_RECURSE
  "CMakeFiles/mdw_sim.dir/sim/channel.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/channel.cc.o.d"
  "CMakeFiles/mdw_sim.dir/sim/config.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/mdw_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/mdw_sim.dir/sim/logging.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/mdw_sim.dir/sim/rng.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/mdw_sim.dir/sim/stats.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/mdw_sim.dir/sim/system.cc.o"
  "CMakeFiles/mdw_sim.dir/sim/system.cc.o.d"
  "libmdw_sim.a"
  "libmdw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
