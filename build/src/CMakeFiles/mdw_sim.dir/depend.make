# Empty dependencies file for mdw_sim.
# This may be replaced when dependencies are built.
