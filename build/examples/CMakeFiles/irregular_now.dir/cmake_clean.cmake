file(REMOVE_RECURSE
  "CMakeFiles/irregular_now.dir/irregular_now.cpp.o"
  "CMakeFiles/irregular_now.dir/irregular_now.cpp.o.d"
  "irregular_now"
  "irregular_now.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_now.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
