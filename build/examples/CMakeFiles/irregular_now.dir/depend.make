# Empty dependencies file for irregular_now.
# This may be replaced when dependencies are built.
