file(REMOVE_RECURSE
  "CMakeFiles/collective_barrier.dir/collective_barrier.cpp.o"
  "CMakeFiles/collective_barrier.dir/collective_barrier.cpp.o.d"
  "collective_barrier"
  "collective_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
