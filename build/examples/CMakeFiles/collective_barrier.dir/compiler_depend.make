# Empty compiler generated dependencies file for collective_barrier.
# This may be replaced when dependencies are built.
