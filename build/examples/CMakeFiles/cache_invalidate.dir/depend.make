# Empty dependencies file for cache_invalidate.
# This may be replaced when dependencies are built.
