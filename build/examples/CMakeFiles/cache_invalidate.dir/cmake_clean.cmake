file(REMOVE_RECURSE
  "CMakeFiles/cache_invalidate.dir/cache_invalidate.cpp.o"
  "CMakeFiles/cache_invalidate.dir/cache_invalidate.cpp.o.d"
  "cache_invalidate"
  "cache_invalidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_invalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
