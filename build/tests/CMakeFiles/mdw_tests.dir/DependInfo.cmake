
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arbiter.cc" "tests/CMakeFiles/mdw_tests.dir/test_arbiter.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_arbiter.cc.o.d"
  "/root/repo/tests/test_central_queue.cc" "tests/CMakeFiles/mdw_tests.dir/test_central_queue.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_central_queue.cc.o.d"
  "/root/repo/tests/test_channel.cc" "tests/CMakeFiles/mdw_tests.dir/test_channel.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_channel.cc.o.d"
  "/root/repo/tests/test_collectives.cc" "tests/CMakeFiles/mdw_tests.dir/test_collectives.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_collectives.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/mdw_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_dest_set.cc" "tests/CMakeFiles/mdw_tests.dir/test_dest_set.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_dest_set.cc.o.d"
  "/root/repo/tests/test_encoding.cc" "tests/CMakeFiles/mdw_tests.dir/test_encoding.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_encoding.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/mdw_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/mdw_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_fat_tree.cc" "tests/CMakeFiles/mdw_tests.dir/test_fat_tree.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_fat_tree.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/mdw_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_hw_barrier.cc" "tests/CMakeFiles/mdw_tests.dir/test_hw_barrier.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_hw_barrier.cc.o.d"
  "/root/repo/tests/test_irregular.cc" "tests/CMakeFiles/mdw_tests.dir/test_irregular.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_irregular.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/mdw_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_network_e2e.cc" "tests/CMakeFiles/mdw_tests.dir/test_network_e2e.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_network_e2e.cc.o.d"
  "/root/repo/tests/test_nic.cc" "tests/CMakeFiles/mdw_tests.dir/test_nic.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_nic.cc.o.d"
  "/root/repo/tests/test_packet.cc" "tests/CMakeFiles/mdw_tests.dir/test_packet.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_packet.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/mdw_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_routing.cc" "tests/CMakeFiles/mdw_tests.dir/test_routing.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_routing.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/mdw_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_sw_mcast.cc" "tests/CMakeFiles/mdw_tests.dir/test_sw_mcast.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_sw_mcast.cc.o.d"
  "/root/repo/tests/test_switch_base.cc" "tests/CMakeFiles/mdw_tests.dir/test_switch_base.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_switch_base.cc.o.d"
  "/root/repo/tests/test_switches.cc" "tests/CMakeFiles/mdw_tests.dir/test_switches.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_switches.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/mdw_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_tracker.cc" "tests/CMakeFiles/mdw_tests.dir/test_tracker.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_tracker.cc.o.d"
  "/root/repo/tests/test_traffic.cc" "tests/CMakeFiles/mdw_tests.dir/test_traffic.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_traffic.cc.o.d"
  "/root/repo/tests/test_uni_min.cc" "tests/CMakeFiles/mdw_tests.dir/test_uni_min.cc.o" "gcc" "tests/CMakeFiles/mdw_tests.dir/test_uni_min.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_switch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_message.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
