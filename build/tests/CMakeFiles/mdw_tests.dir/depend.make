# Empty dependencies file for mdw_tests.
# This may be replaced when dependencies are built.
